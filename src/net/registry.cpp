#include "net/registry.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace choir::net {

void DeviceSession::push_snr(float snr_db) {
  snr_hist[snr_head] = snr_db;
  snr_head = static_cast<std::uint8_t>((snr_head + 1) % kSnrHistory);
  if (snr_count < kSnrHistory) ++snr_count;
}

double DeviceSession::mean_snr_db() const {
  if (snr_count == 0) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < snr_count; ++i) acc += snr_hist[i];
  return acc / static_cast<double>(snr_count);
}

double DeviceSession::max_snr_db() const {
  if (snr_count == 0) return 0.0;
  double m = snr_hist[0];
  for (std::size_t i = 1; i < snr_count; ++i)
    m = std::max(m, static_cast<double>(snr_hist[i]));
  return m;
}

DeviceRegistry::DeviceRegistry(const RegistryOptions& opt) : opt_(opt) {
  if (opt_.shard_bits > 12)
    throw std::invalid_argument("registry: shard_bits > 12");
  const std::size_t n = std::size_t{1} << opt_.shard_bits;
  if (opt_.max_devices > 0) {
    // Per-shard cap; rounding up keeps the aggregate cap >= max_devices so
    // a perfectly-balanced population never evicts below the configured
    // budget (hashing skew can push one shard to its cap slightly early).
    shard_cap_ = (opt_.max_devices + n - 1) / n;
  }
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
  if constexpr (obs::kEnabled) {
    shard_gauges_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      shard_gauges_[i] = &obs::registry().gauge(
          "net.registry.shard" + std::to_string(i) + ".devices");
    }
    total_gauge_ = &obs::registry().gauge("net.registry.devices");
    evicted_counter_ = &obs::registry().counter("net.registry.evicted");
  }
}

void DeviceRegistry::update_occupancy(std::size_t shard_idx, std::size_t n) {
  if constexpr (obs::kEnabled) {
    shard_gauges_[shard_idx]->set(static_cast<std::int64_t>(n));
    total_gauge_->add(1);
  } else {
    (void)shard_idx;
    (void)n;
  }
}

DeviceSession& DeviceRegistry::get_or_create(Shard& sh, std::size_t shard_idx,
                                             std::uint32_t dev_addr) {
  auto [it, inserted] = sh.sessions.try_emplace(dev_addr);
  if (inserted) {
    it->second.dev_addr = dev_addr;
    if (shard_cap_ > 0) {
      sh.order.push_back(dev_addr);
      while (sh.sessions.size() > shard_cap_) {
        // Oldest-provisioned session goes first. Entries in `order` are
        // unique (sessions are only ever erased here, and each erase pops
        // its queue slot), so the front always names a live session other
        // than the one just inserted (cap >= 1).
        const std::uint32_t victim = sh.order.front();
        sh.order.pop_front();
        sh.sessions.erase(victim);
        evicted_.fetch_add(1, std::memory_order_relaxed);
        if constexpr (obs::kEnabled) {
          evicted_counter_->add(1);
          total_gauge_->add(-1);
        }
      }
      // The erase may have invalidated `it`.
      it = sh.sessions.find(dev_addr);
    }
    update_occupancy(shard_idx, sh.sessions.size());
  }
  return it->second;
}

void DeviceRegistry::provision(std::uint32_t dev_addr, double x_m,
                               double y_m) {
  const std::size_t idx = mix(dev_addr) & (shards_.size() - 1);
  Shard& sh = *shards_[idx];
  std::lock_guard<std::mutex> lock(sh.mu);
  DeviceSession& s = get_or_create(sh, idx, dev_addr);
  s.x_m = x_m;
  s.y_m = y_m;
}

FcntCheck DeviceRegistry::accept(const UplinkFrame& f,
                                 RegistryTiming* timing) {
  const std::size_t idx = mix(f.dev_addr) & (shards_.size() - 1);
  Shard& sh = *shards_[idx];
  if (timing == nullptr) {
    std::lock_guard<std::mutex> lock(sh.mu);
    return accept_locked(sh, idx, f);
  }

  // Timed variant (traced frames): split the shard-lock cost into queueing
  // vs. critical-section time so a contended shard shows up as wait.
  const double t0 = obs::trace_now_us();
  std::unique_lock<std::mutex> lock(sh.mu);
  const double t1 = obs::trace_now_us();
  const FcntCheck out = accept_locked(sh, idx, f);
  lock.unlock();
  const double t2 = obs::trace_now_us();
  timing->shard = idx;
  timing->lock_acquired_us = t1;
  timing->lock_wait_us = t1 - t0;
  timing->lock_hold_us = t2 - t1;
  CHOIR_OBS_HIST("net.registry.lock_wait_us", timing->lock_wait_us);
  CHOIR_OBS_HIST("net.registry.lock_hold_us", timing->lock_hold_us);
  return out;
}

FcntCheck DeviceRegistry::accept_locked(Shard& sh, std::size_t idx,
                                        const UplinkFrame& f) {
  DeviceSession* s = nullptr;
  if (opt_.auto_provision) {
    s = &get_or_create(sh, idx, f.dev_addr);
  } else {
    auto it = sh.sessions.find(f.dev_addr);
    if (it == sh.sessions.end()) return FcntCheck::kUnknownDevice;
    s = &it->second;
  }

  if (s->seen) {
    const bool stale = f.fcnt <= s->last_fcnt;
    const bool desync = !stale && f.fcnt - s->last_fcnt > opt_.max_fcnt_gap;
    if (stale || desync) {
      ++s->replays;
      return FcntCheck::kReplay;
    }
  }

  s->seen = true;
  s->last_fcnt = f.fcnt;
  ++s->uplinks;
  s->last_gateway = f.gateway_id;
  s->last_channel = f.channel;
  s->last_snr_db = f.snr_db;
  s->last_timing_samples = f.timing_samples;
  s->cfo_fingerprint_bins =
      s->uplinks == 1 ? static_cast<double>(f.cfo_bins)
                      : (1.0 - opt_.cfo_alpha) * s->cfo_fingerprint_bins +
                            opt_.cfo_alpha * f.cfo_bins;
  s->push_snr(f.snr_db);
  return FcntCheck::kAccepted;
}

void DeviceRegistry::note_better_copy(const UplinkFrame& f) {
  Shard& sh = shard_for(f.dev_addr);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.sessions.find(f.dev_addr);
  if (it == sh.sessions.end()) return;
  DeviceSession& s = it->second;
  if (!s.seen || s.last_fcnt != f.fcnt || f.snr_db <= s.last_snr_db) return;
  s.last_gateway = f.gateway_id;
  s.last_channel = f.channel;
  s.last_snr_db = f.snr_db;
  s.last_timing_samples = f.timing_samples;
  if (s.snr_count > 0) {
    const std::uint8_t newest = static_cast<std::uint8_t>(
        (s.snr_head + kSnrHistory - 1) % kSnrHistory);
    s.snr_hist[newest] = f.snr_db;
  }
}

void DeviceRegistry::clear_snr_history(std::uint32_t dev_addr) {
  Shard& sh = shard_for(dev_addr);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.sessions.find(dev_addr);
  if (it == sh.sessions.end()) return;
  it->second.snr_hist = {};
  it->second.snr_count = 0;
  it->second.snr_head = 0;
}

std::optional<DeviceSession> DeviceRegistry::lookup(
    std::uint32_t dev_addr) const {
  Shard& sh = shard_for(dev_addr);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.sessions.find(dev_addr);
  if (it == sh.sessions.end()) return std::nullopt;
  return it->second;
}

std::size_t DeviceRegistry::device_count() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->sessions.size();
  }
  return n;
}

std::vector<DeviceSession> DeviceRegistry::dump_shard(std::size_t i) const {
  Shard& sh = *shards_[i];
  std::lock_guard<std::mutex> lock(sh.mu);
  std::vector<DeviceSession> out;
  out.reserve(sh.sessions.size());
  if (shard_cap_ > 0) {
    for (std::uint32_t dev : sh.order) {
      auto it = sh.sessions.find(dev);
      if (it != sh.sessions.end()) out.push_back(it->second);
    }
  } else {
    for (const auto& [dev, s] : sh.sessions) out.push_back(s);
  }
  return out;
}

void DeviceRegistry::restore_shard(std::size_t i,
                                   const std::vector<DeviceSession>& sessions) {
  Shard& sh = *shards_[i];
  std::lock_guard<std::mutex> lock(sh.mu);
  const std::size_t before = sh.sessions.size();
  sh.sessions.clear();
  sh.order.clear();
  for (const DeviceSession& s : sessions) {
    if ((mix(s.dev_addr) & (shards_.size() - 1)) != i)
      throw std::invalid_argument(
          "registry: restored session for device " +
          std::to_string(s.dev_addr) + " does not hash to shard " +
          std::to_string(i) + " (snapshot written with different shard_bits?)");
    sh.sessions[s.dev_addr] = s;
    if (shard_cap_ > 0) sh.order.push_back(s.dev_addr);
  }
  if constexpr (obs::kEnabled) {
    shard_gauges_[i]->set(static_cast<std::int64_t>(sh.sessions.size()));
    total_gauge_->add(static_cast<std::int64_t>(sh.sessions.size()) -
                      static_cast<std::int64_t>(before));
  }
}

void DeviceRegistry::restore_evicted(std::uint64_t n) {
  const std::uint64_t before = evicted_.exchange(n, std::memory_order_relaxed);
  if constexpr (obs::kEnabled) {
    if (n > before) evicted_counter_->add(static_cast<std::int64_t>(n - before));
  } else {
    (void)before;
  }
}

std::vector<std::size_t> DeviceRegistry::shard_occupancy() const {
  std::vector<std::size_t> occ(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    occ[i] = shards_[i]->sessions.size();
  }
  return occ;
}

}  // namespace choir::net
