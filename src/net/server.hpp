// Network server: the tier above the gateways.
//
//   gateway 0 --\                         +-- DeviceRegistry (sharded
//   gateway 1 ---+--> NetServer::ingest --+   sessions, FCnt replay window,
//   gateway N --/     (any thread)        |   CFO fingerprint, SNR history)
//        |                                +-- CrossGatewayDedup (best-SNR
//        +-- in-process or UDP framing    |   exactly-once window)
//                                         +-- accepted-frame feed / callback
//                                         +-- AdrEngine + TeamManager
//                                         +-- persist::Persistence (optional
//                                             snapshot + FCnt journal)
//
// Ingest pipeline per reception, in order:
//   1. structural validation (empty payload, absurd SF) -> kMalformed;
//   2. cross-gateway dedup on (DevAddr, FCnt, payload hash) -> kDuplicate,
//      upgrading the retained copy's metadata when this copy's SNR wins;
//   3. registry FCnt window -> kReplay / kUnknownDevice;
//   4. journal the outcome (when persistence is on) -> durable;
//   5. accept: frame appended to the feed (if kept) and handed to the
//      callback.
//
// Dedup runs *before* the replay check on purpose: a second gateway's copy
// of an accepted frame carries the same FCnt, so the registry alone would
// misclassify it as a replay; the payload-hash key separates "same
// transmission, another ear" from "attacker replaying an old counter".
//
// Durability (cfg.persist.dir set): every classification is journaled
// before the accept callback fires, so a frame is never confirmed
// downstream unless a restarted server will refuse to accept it again —
// exactly-once across a crash. Construction recovers the newest committed
// generation (snapshot + journal replay through the real registry code
// paths, so CFO EWMAs and SNR rings restore bit-for-bit) and immediately
// checkpoints, sealing any torn journal tail into a fresh generation.
// What is deliberately NOT persisted: the cross-gateway dedup window (a
// restart reopens at most one dedup-window of duplicate delivery; the
// FCnt window still blocks same-device replays) and the obs registry's
// process-lifetime counters (NetServerStats atomics ARE restored). See
// docs/PERSISTENCE.md.
//
// Thread safety: ingest() may be called from any number of threads
// (gateway UDP readers, in-process pipelines). Internally everything is
// sharded or atomic; checkpoint() quiesces ingest via a shared_mutex gate
// taken shared by every journaling operation.
//
// Metrics (obs registry): net.uplinks, net.accepted, net.dedup_dropped,
// net.dedup_upgraded, net.replay_rejected, net.unknown_device,
// net.malformed, per-SF net.accepted{sf="N"} series, the registry's
// per-shard occupancy gauges, and (when persistence is on) the
// net.persist.* family.
//
// Cross-tier tracing: a frame whose CHOU record carried a trace stamp
// (frame.trace_id != 0, wire v2) is followed through the whole ingest
// pipeline with spans — net.ingest, net.dedup, net.replay, net.registry
// (shard-lock wait vs. hold), net.adr, net.persist.journal, net.accept —
// plus a synthesized net.backhaul span from the gateway's emit timestamp.
// Multi-gateway copies of the same transmission merge onto ONE trace row,
// keyed by the dedup window's (DevAddr, FCnt, payload-hash) entry: the
// first copy's trace becomes the merged row, later copies are absorbed
// into it (their gateway-side stages included when the gateway ran
// in-process). Untraced frames pay one branch; under CHOIR_OBS=OFF all of
// it compiles out. See docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "net/adr.hpp"
#include "net/dedup.hpp"
#include "net/persist/persistence.hpp"
#include "net/registry.hpp"
#include "net/server_stats.hpp"
#include "net/team_manager.hpp"
#include "net/uplink.hpp"
#include "obs/obs.hpp"

namespace choir::net {

struct NetServerConfig {
  RegistryOptions registry{};
  DedupOptions dedup{};
  AdrOptions adr{};
  TeamManagerOptions teams{};
  /// Durable control plane: snapshot + write-ahead journal under
  /// persist.dir. Empty dir (the default) disables persistence entirely —
  /// zero overhead on the ingest path.
  persist::PersistOptions persist{};
  /// Retain accepted frames in an in-memory feed (drain_feed()). Turn off
  /// for long-running / benchmark ingest where the callback is the sink.
  bool keep_feed = true;
};

enum class IngestStatus {
  kAccepted,
  kDuplicate,       ///< cross-gateway copy inside the dedup window
  kReplay,          ///< FCnt window rejection
  kUnknownDevice,   ///< auto-provision off and device not provisioned
  kMalformed,       ///< structurally invalid frame
};

const char* ingest_status_name(IngestStatus s);

struct IngestResult {
  IngestStatus status = IngestStatus::kMalformed;
  std::uint32_t dev_addr = 0;
  std::uint32_t fcnt = 0;
  /// kDuplicate only: this copy improved the retained copy's SNR.
  bool upgraded = false;
};

class NetServer {
 public:
  using Callback = std::function<void(const UplinkFrame&)>;

  /// When cfg.persist.dir is set, construction recovers any committed
  /// state under it and starts a fresh generation. Throws
  /// std::runtime_error if the directory holds a committed generation
  /// that cannot be loaded, or one written with different shard_bits.
  explicit NetServer(const NetServerConfig& cfg = {});

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Ingests one reception, stamping it with wall-clock time for the
  /// dedup window. Thread-safe.
  IngestResult ingest(UplinkFrame frame);

  /// Ingest under an explicit monotonic clock (simulated time, benches).
  /// Callers must not mix wall-clock ingest() into the same server.
  IngestResult ingest_at(UplinkFrame frame, double now_s);

  /// Creates (or repositions) a device session ahead of traffic,
  /// journaling the provision when persistence is on. Prefer this over
  /// registry().provision() — direct registry provisioning bypasses the
  /// journal and the device's position would not survive a restart.
  void provision(std::uint32_t dev_addr, double x_m = 0.0, double y_m = 0.0);

  /// Invoked (from the ingesting thread) for every accepted frame. With
  /// persistence on, the frame is durable in the journal before this
  /// fires — the callback is the exactly-once confirmation point.
  void set_callback(Callback cb) { on_accept_ = std::move(cb); }

  /// Moves out the accepted-frame feed in acceptance order. Frames whose
  /// later cross-gateway copies won on SNR carry the winning copy's
  /// reception metadata (payload is bit-identical by construction).
  std::vector<UplinkFrame> drain_feed();
  std::size_t feed_size() const;

  NetServerStats stats() const;

  DeviceRegistry& registry() { return registry_; }
  const DeviceRegistry& registry() const { return registry_; }
  CrossGatewayDedup& dedup() { return dedup_; }
  TeamManager& teams() { return teams_; }

  /// ADR recommendation for one device under the server's policy.
  AdrDecision adr_for(std::uint32_t dev_addr, int current_sf,
                      double current_power_dbm) const;

  /// Records that an ADR change was actually commanded: clears the
  /// device's SNR history so the next recommendation is computed from
  /// samples taken at the new settings only (the LoRaWAN network-server
  /// convention — without it the planner ping-pongs; see adr.hpp).
  /// Journaled, so a restarted server's ADR engine sees the same history.
  void note_adr_applied(std::uint32_t dev_addr);

  /// Rotates the persistence generation: flush journals, write a fresh
  /// snapshot, atomically commit, GC old generations. Quiesces ingest for
  /// the duration. No-op without persistence. Thread-safe.
  void checkpoint();

  /// What construction recovered from disk (all-zero on a fresh start or
  /// when persistence is off).
  const persist::RecoveryStats& recovery() const { return recovery_; }

  /// Null when persistence is off.
  persist::Persistence* persistence() { return persist_.get(); }
  bool persistent() const { return persist_ != nullptr; }

  const NetServerConfig& config() const { return cfg_; }

  // ------------------------------------------------ hot standby (src/net/ha/)

  /// Standby bootstrap: restores a snapshot image into this server —
  /// construction-time recovery minus the journal replay, which arrives
  /// afterwards via apply_replicated(). Only valid before any ingest.
  /// Throws on a shard_bits mismatch.
  void restore_snapshot(const persist::SnapshotImage& image);

  /// Applies one replicated journal record through the real registry
  /// code paths — the streaming twin of recovery, same bit-exactness
  /// guarantee. Caller serializes (the follower's apply thread); must
  /// not run concurrently with ingest.
  void apply_replicated(const persist::JournalRecord& r);

  /// Promotion: attaches persistence to a server constructed without it.
  /// Adopts `on_disk_generation` (the generation whose journals the
  /// standby finished draining) and seals generation+1, stamped with
  /// opt.epoch, on top of the in-memory state — a hot takeover with no
  /// disk re-recovery. Must be called before ingest starts; throws if
  /// persistence is already attached or the epoch fence rejects us.
  void attach_persistence(const persist::PersistOptions& opt,
                          std::uint64_t on_disk_generation);

  /// Runs `fn` with ingest quiesced (the checkpoint gate held unique).
  /// The network replication sender uses this to capture the snapshot
  /// bytes and its per-shard head sequence numbers at one instant.
  void with_ingest_quiesced(const std::function<void()>& fn);

  /// Current durable state. Caller must be quiesced (inside
  /// with_ingest_quiesced, or single-threaded).
  persist::SnapshotImage snapshot_image() const;

 private:
  double wall_now_s() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  IngestResult ingest_impl(UplinkFrame& frame, double now_s);
  /// Attaches the collected ingest spans to the frame's merged cross-tier
  /// trace (first copy adopts / mints the row, duplicates are absorbed
  /// into the dedup winner's row). Only called for traced frames.
  void finish_trace(obs::TraceCollector* col, const UplinkFrame& frame,
                    const IngestResult& res, const DedupKey* key,
                    std::uint64_t dup_trace_id, double t_ingest0);
  /// Journal one classified ingest (caller holds the persist gate shared).
  void journal_ingest(const IngestResult& res, const UplinkFrame& frame);
  /// Construction-time restore: apply snapshot + replay journals.
  void restore_from_disk();
  /// Shared half of restore_from_disk / restore_snapshot: shard_bits
  /// check, registry shards, eviction order, counters.
  void restore_image(const persist::SnapshotImage& image);
  void apply_record(const persist::JournalRecord& r,
                    std::uint64_t& max_roster_version);
  /// Installs the journaling roster-rebuild listener (ctor + promotion).
  void install_roster_listener();

  NetServerConfig cfg_;
  DeviceRegistry registry_;
  CrossGatewayDedup dedup_;
  TeamManager teams_;
  Callback on_accept_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  std::unique_ptr<persist::Persistence> persist_;
  persist::RecoveryStats recovery_{};
  /// Roster version as applied by the replication stream (standby only).
  std::uint64_t replicated_roster_version_ = 0;
  /// Checkpoint gate: journaling ops hold shared, checkpoint() unique.
  /// Only touched when persistence is on.
  mutable std::shared_mutex persist_gate_;

  mutable std::mutex feed_mu_;
  std::vector<UplinkFrame> feed_;

  static constexpr auto relaxed = std::memory_order_relaxed;
  std::atomic<std::uint64_t> uplinks_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dedup_dropped_{0};
  std::atomic<std::uint64_t> dedup_upgraded_{0};
  std::atomic<std::uint64_t> replay_rejected_{0};
  std::atomic<std::uint64_t> unknown_device_{0};
  std::atomic<std::uint64_t> malformed_{0};
  // Registry mirrors (process-lifetime handles; null iff obs disabled).
  obs::Counter* reg_uplinks_ = nullptr;
  obs::Counter* reg_accepted_ = nullptr;
  obs::Counter* reg_dedup_dropped_ = nullptr;
  obs::Counter* reg_dedup_upgraded_ = nullptr;
  obs::Counter* reg_replay_rejected_ = nullptr;
  obs::Counter* reg_unknown_device_ = nullptr;
  obs::Counter* reg_malformed_ = nullptr;
  /// Per-SF accepted series, net.accepted{sf="5".."12"} (index sf-5).
  std::array<obs::Counter*, 8> reg_accepted_sf_{};
  // Ingest-span latency histograms, sampled on traced frames only (the
  // untraced hot path takes no extra clock reads).
  obs::Histogram* hist_ingest_ = nullptr;
  obs::Histogram* hist_dedup_ = nullptr;
  obs::Histogram* hist_replay_ = nullptr;
  obs::Histogram* hist_adr_ = nullptr;
  obs::Histogram* hist_journal_ = nullptr;
  obs::Histogram* hist_accept_ = nullptr;
};

}  // namespace choir::net
