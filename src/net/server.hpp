// Network server: the tier above the gateways.
//
//   gateway 0 --\                         +-- DeviceRegistry (sharded
//   gateway 1 ---+--> NetServer::ingest --+   sessions, FCnt replay window,
//   gateway N --/     (any thread)        |   CFO fingerprint, SNR history)
//        |                                +-- CrossGatewayDedup (best-SNR
//        +-- in-process or UDP framing    |   exactly-once window)
//                                         +-- accepted-frame feed / callback
//                                         +-- AdrEngine + TeamManager
//
// Ingest pipeline per reception, in order:
//   1. structural validation (empty payload, absurd SF) -> kMalformed;
//   2. cross-gateway dedup on (DevAddr, FCnt, payload hash) -> kDuplicate,
//      upgrading the retained copy's metadata when this copy's SNR wins;
//   3. registry FCnt window -> kReplay / kUnknownDevice;
//   4. accept: session updated, frame appended to the feed (if kept) and
//      handed to the callback.
//
// Dedup runs *before* the replay check on purpose: a second gateway's copy
// of an accepted frame carries the same FCnt, so the registry alone would
// misclassify it as a replay; the payload-hash key separates "same
// transmission, another ear" from "attacker replaying an old counter".
//
// Thread safety: ingest() may be called from any number of threads
// (gateway UDP readers, in-process pipelines). Internally everything is
// sharded or atomic; the only global lock is the optional feed vector's.
//
// Metrics (obs registry): net.uplinks, net.accepted, net.dedup_dropped,
// net.dedup_upgraded, net.replay_rejected, net.unknown_device,
// net.malformed, and the registry's per-shard occupancy gauges.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "net/adr.hpp"
#include "net/dedup.hpp"
#include "net/registry.hpp"
#include "net/team_manager.hpp"
#include "net/uplink.hpp"
#include "obs/obs.hpp"

namespace choir::net {

struct NetServerConfig {
  RegistryOptions registry{};
  DedupOptions dedup{};
  AdrOptions adr{};
  TeamManagerOptions teams{};
  /// Retain accepted frames in an in-memory feed (drain_feed()). Turn off
  /// for long-running / benchmark ingest where the callback is the sink.
  bool keep_feed = true;
};

enum class IngestStatus {
  kAccepted,
  kDuplicate,       ///< cross-gateway copy inside the dedup window
  kReplay,          ///< FCnt window rejection
  kUnknownDevice,   ///< auto-provision off and device not provisioned
  kMalformed,       ///< structurally invalid frame
};

const char* ingest_status_name(IngestStatus s);

struct IngestResult {
  IngestStatus status = IngestStatus::kMalformed;
  std::uint32_t dev_addr = 0;
  std::uint32_t fcnt = 0;
  /// kDuplicate only: this copy improved the retained copy's SNR.
  bool upgraded = false;
};

/// Plain-value counter snapshot (mirrored into the obs registry).
struct NetServerStats {
  std::uint64_t uplinks = 0;          ///< every reception offered
  std::uint64_t accepted = 0;
  std::uint64_t dedup_dropped = 0;
  std::uint64_t dedup_upgraded = 0;   ///< duplicates that won on SNR
  std::uint64_t replay_rejected = 0;
  std::uint64_t unknown_device = 0;
  std::uint64_t malformed = 0;
};

std::string format_stats(const NetServerStats& s);

class NetServer {
 public:
  using Callback = std::function<void(const UplinkFrame&)>;

  explicit NetServer(const NetServerConfig& cfg = {});

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Ingests one reception, stamping it with wall-clock time for the
  /// dedup window. Thread-safe.
  IngestResult ingest(UplinkFrame frame);

  /// Ingest under an explicit monotonic clock (simulated time, benches).
  /// Callers must not mix wall-clock ingest() into the same server.
  IngestResult ingest_at(UplinkFrame frame, double now_s);

  /// Invoked (from the ingesting thread) for every accepted frame.
  void set_callback(Callback cb) { on_accept_ = std::move(cb); }

  /// Moves out the accepted-frame feed in acceptance order. Frames whose
  /// later cross-gateway copies won on SNR carry the winning copy's
  /// reception metadata (payload is bit-identical by construction).
  std::vector<UplinkFrame> drain_feed();
  std::size_t feed_size() const;

  NetServerStats stats() const;

  DeviceRegistry& registry() { return registry_; }
  const DeviceRegistry& registry() const { return registry_; }
  CrossGatewayDedup& dedup() { return dedup_; }
  TeamManager& teams() { return teams_; }

  /// ADR recommendation for one device under the server's policy.
  AdrDecision adr_for(std::uint32_t dev_addr, int current_sf,
                      double current_power_dbm) const;

  /// Records that an ADR change was actually commanded: clears the
  /// device's SNR history so the next recommendation is computed from
  /// samples taken at the new settings only (the LoRaWAN network-server
  /// convention — without it the planner ping-pongs; see adr.hpp).
  void note_adr_applied(std::uint32_t dev_addr);

  const NetServerConfig& config() const { return cfg_; }

 private:
  double wall_now_s() const {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  NetServerConfig cfg_;
  DeviceRegistry registry_;
  CrossGatewayDedup dedup_;
  TeamManager teams_;
  Callback on_accept_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();

  mutable std::mutex feed_mu_;
  std::vector<UplinkFrame> feed_;

  static constexpr auto relaxed = std::memory_order_relaxed;
  std::atomic<std::uint64_t> uplinks_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> dedup_dropped_{0};
  std::atomic<std::uint64_t> dedup_upgraded_{0};
  std::atomic<std::uint64_t> replay_rejected_{0};
  std::atomic<std::uint64_t> unknown_device_{0};
  std::atomic<std::uint64_t> malformed_{0};
  // Registry mirrors (process-lifetime handles; null iff obs disabled).
  obs::Counter* reg_uplinks_ = nullptr;
  obs::Counter* reg_accepted_ = nullptr;
  obs::Counter* reg_dedup_dropped_ = nullptr;
  obs::Counter* reg_dedup_upgraded_ = nullptr;
  obs::Counter* reg_replay_rejected_ = nullptr;
  obs::Counter* reg_unknown_device_ = nullptr;
  obs::Counter* reg_malformed_ = nullptr;
};

}  // namespace choir::net
