#include "net/uplink.hpp"

#include <bit>
#include <cstring>

namespace choir::net {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

struct Cursor {
  const std::uint8_t* p;
  std::size_t n;

  bool u8(std::uint8_t& v) {
    if (n < 1) return false;
    v = p[0];
    p += 1;
    n -= 1;
    return true;
  }
  bool u16(std::uint16_t& v) {
    if (n < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    n -= 2;
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (n < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    n -= 4;
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (n < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    n -= 8;
    return true;
  }
  bool f32(float& v) {
    std::uint32_t bits = 0;
    if (!u32(bits)) return false;
    v = std::bit_cast<float>(bits);
    return true;
  }
};

}  // namespace

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (std::size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t payload_hash(const std::vector<std::uint8_t>& payload) {
  return fnv1a64(payload.data(), payload.size());
}

DeviceHeader parse_device_header(const std::vector<std::uint8_t>& payload) {
  DeviceHeader h;
  if (payload.size() >= 3) {
    h.dev_addr = payload[0];
    h.fcnt = static_cast<std::uint32_t>(payload[1] |
                                        (static_cast<std::uint32_t>(payload[2])
                                         << 8));
  } else {
    // Anonymous short frame: hash-derived synthetic address outside the
    // compact 8-bit range so it can never shadow a provisioned device.
    h.dev_addr =
        static_cast<std::uint32_t>(payload_hash(payload) & 0x00FFFFFF) |
        0x01000000u;
    h.fcnt = 0;
  }
  return h;
}

UplinkFrame make_uplink(std::vector<std::uint8_t> payload, float snr_db,
                        float cfo_bins, float timing_samples,
                        std::uint32_t gateway_id, std::uint16_t channel,
                        std::uint8_t sf, std::uint64_t stream_offset) {
  UplinkFrame f;
  const DeviceHeader h = parse_device_header(payload);
  f.dev_addr = h.dev_addr;
  f.fcnt = h.fcnt;
  f.gateway_id = gateway_id;
  f.channel = channel;
  f.sf = sf;
  f.stream_offset = stream_offset;
  f.snr_db = snr_db;
  f.cfo_bins = cfo_bins;
  f.timing_samples = timing_samples;
  f.payload = std::move(payload);
  return f;
}

void encode_uplink(const UplinkFrame& f, std::vector<std::uint8_t>& out) {
  const bool traced = f.trace_id != 0;
  const std::size_t body = kRecordFixedBytes + f.payload.size() +
                           (traced ? kTraceExtensionBytes : 0);
  put_u16(out, static_cast<std::uint16_t>(body));
  put_u32(out, f.gateway_id);
  put_u16(out, f.channel);
  out.push_back(f.sf);
  out.push_back(traced ? kWireFlagTrace : 0);  // flags
  put_u32(out, f.dev_addr);
  put_u32(out, f.fcnt);
  put_u64(out, f.stream_offset);
  put_f32(out, f.snr_db);
  put_f32(out, f.cfo_bins);
  put_f32(out, f.timing_samples);
  put_u16(out, static_cast<std::uint16_t>(f.payload.size()));
  out.insert(out.end(), f.payload.begin(), f.payload.end());
  if (traced) {
    put_u64(out, f.trace_id);
    put_u64(out, f.emitted_unix_us);
  }
}

std::vector<std::uint8_t> encode_datagram(
    const std::vector<UplinkFrame>& frames, std::size_t begin,
    std::size_t end) {
  std::vector<std::uint8_t> out;
  put_u32(out, kWireMagic);
  out.push_back(kWireVersion);
  out.push_back(0);  // reserved
  put_u16(out, static_cast<std::uint16_t>(end - begin));
  for (std::size_t i = begin; i < end; ++i) encode_uplink(frames[i], out);
  return out;
}

std::vector<std::vector<std::uint8_t>> encode_datagrams(
    const std::vector<UplinkFrame>& frames, std::size_t max_bytes) {
  std::vector<std::vector<std::uint8_t>> out;
  std::size_t begin = 0;
  while (begin < frames.size()) {
    std::size_t bytes = 8;  // datagram header
    std::size_t end = begin;
    while (end < frames.size()) {
      const std::size_t rec =
          2 + kRecordFixedBytes + frames[end].payload.size() +
          (frames[end].trace_id != 0 ? kTraceExtensionBytes : 0);
      if (end > begin && bytes + rec > max_bytes) break;
      bytes += rec;
      ++end;
    }
    out.push_back(encode_datagram(frames, begin, end));
    begin = end;
  }
  return out;
}

bool decode_datagram(const std::uint8_t* data, std::size_t len,
                     std::vector<UplinkFrame>& out) {
  Cursor c{data, len};
  std::uint32_t magic = 0;
  std::uint8_t version = 0, reserved = 0;
  std::uint16_t count = 0;
  if (!c.u32(magic) || magic != kWireMagic) return false;
  if (!c.u8(version) || version < kWireMinVersion || version > kWireVersion)
    return false;
  if (!c.u8(reserved) || !c.u16(count)) return false;

  std::vector<UplinkFrame> frames;
  frames.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    std::uint16_t body = 0;
    if (!c.u16(body) || body < kRecordFixedBytes || c.n < body) return false;
    Cursor rec{c.p, body};
    c.p += body;
    c.n -= body;

    UplinkFrame f;
    std::uint8_t flags = 0;
    std::uint16_t payload_len = 0;
    if (!rec.u32(f.gateway_id) || !rec.u16(f.channel) || !rec.u8(f.sf) ||
        !rec.u8(flags) || !rec.u32(f.dev_addr) || !rec.u32(f.fcnt) ||
        !rec.u64(f.stream_offset) || !rec.f32(f.snr_db) ||
        !rec.f32(f.cfo_bins) || !rec.f32(f.timing_samples) ||
        !rec.u16(payload_len)) {
      return false;
    }
    if (rec.n < payload_len) return false;
    f.payload.assign(rec.p, rec.p + payload_len);
    rec.p += payload_len;
    rec.n -= payload_len;
    if ((flags & kWireFlagTrace) != 0) {
      // v2 trace extension: a flagged record that cannot hold it is
      // structurally invalid (the sender always writes both fields).
      if (!rec.u64(f.trace_id) || !rec.u64(f.emitted_unix_us)) return false;
    }
    // Bytes past here belong to a future format revision: skip.
    frames.push_back(std::move(f));
  }
  out.insert(out.end(), std::make_move_iterator(frames.begin()),
             std::make_move_iterator(frames.end()));
  return true;
}

}  // namespace choir::net
