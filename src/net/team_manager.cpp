#include "net/team_manager.hpp"

#include <algorithm>
#include <unordered_set>

namespace choir::net {

namespace {

/// Stable identity of an assignment for churn accounting: teams are named
/// by their smallest member DevAddr (ordinals shuffle between rebuilds,
/// membership does not), individual/unreachable by sentinels.
constexpr int kIndividual = -1;
constexpr int kUnreachable = -2;

int team_key(const std::vector<std::size_t>& team) {
  std::size_t mn = team.front();
  for (std::size_t id : team) mn = std::min(mn, id);
  return static_cast<int>(mn);
}

}  // namespace

TeamManager::TeamManager(const DeviceRegistry& registry,
                         const TeamManagerOptions& opt)
    : registry_(registry), opt_(opt) {}

TeamRoster TeamManager::rebuild() {
  // Snapshot: every device with enough accepted uplinks to trust its SNR.
  std::vector<core::SensorInfo> sensors;
  registry_.for_each([&](const DeviceSession& s) {
    if (s.uplinks < opt_.min_uplinks) return;
    core::SensorInfo info;
    info.id = s.dev_addr;
    info.snr_db = s.mean_snr_db();
    info.x_m = s.x_m;
    info.y_m = s.y_m;
    sensors.push_back(info);
  });
  // for_each visits shards in hash order; sort for run-to-run determinism.
  std::sort(sensors.begin(), sensors.end(),
            [](const core::SensorInfo& a, const core::SensorInfo& b) {
              return a.id < b.id;
            });

  std::unique_lock<std::mutex> lock(mu_);

  std::unordered_map<std::size_t, const core::SensorInfo*> by_id;
  for (const auto& s : sensors) by_id.emplace(s.id, &s);

  // Stability pass: carry over every previous team that is still viable
  // under the fresh SNR estimates.
  std::vector<std::vector<std::size_t>> kept;
  std::unordered_set<std::size_t> consumed;
  if (opt_.sticky) {
    for (const auto& team : roster_.plan.teams) {
      bool viable = team.size() <= opt_.plan.max_team_size;
      std::vector<double> snrs;
      for (std::size_t id : team) {
        auto it = by_id.find(id);
        if (it == by_id.end() ||
            it->second->snr_db >= opt_.plan.individual_floor_db) {
          viable = false;
          break;
        }
        snrs.push_back(it->second->snr_db);
      }
      if (viable &&
          core::aggregate_snr_db(snrs) >= opt_.plan.team_target_db) {
        kept.push_back(team);
        for (std::size_t id : team) consumed.insert(id);
      }
    }
  }

  std::vector<core::SensorInfo> to_plan;
  for (const auto& s : sensors) {
    if (!consumed.count(s.id)) to_plan.push_back(s);
  }
  core::TeamPlan fresh = core::plan_teams(to_plan, opt_.plan);

  TeamRoster next;
  next.version = roster_.version + 1;
  next.plan.individual = std::move(fresh.individual);
  next.plan.unreachable = std::move(fresh.unreachable);
  next.plan.teams = std::move(kept);
  for (auto& t : fresh.teams) next.plan.teams.push_back(std::move(t));

  // Churn: devices whose stable assignment key changed (or who are new).
  std::unordered_map<std::uint32_t, Assignment> assign;
  for (std::size_t id : next.plan.individual)
    assign[static_cast<std::uint32_t>(id)] = kIndividual;
  for (std::size_t id : next.plan.unreachable)
    assign[static_cast<std::uint32_t>(id)] = kUnreachable;
  for (const auto& team : next.plan.teams) {
    const int key = team_key(team);
    for (std::size_t id : team) assign[static_cast<std::uint32_t>(id)] = key;
  }
  for (const auto& [id, a] : assign) {
    auto it = assignment_.find(id);
    if (it == assignment_.end() || it->second != a) ++next.churned;
  }

  CHOIR_OBS_COUNT("net.teams.rebuilds", 1);
  CHOIR_OBS_COUNT("net.teams.churned", next.churned);
  CHOIR_OBS_GAUGE_SET("net.teams.count",
                      static_cast<std::int64_t>(next.plan.teams.size()));
  CHOIR_OBS_GAUGE_SET("net.teams.individual",
                      static_cast<std::int64_t>(next.plan.individual.size()));
  CHOIR_OBS_GAUGE_SET(
      "net.teams.unreachable",
      static_cast<std::int64_t>(next.plan.unreachable.size()));

  assignment_ = std::move(assign);
  roster_ = next;

  // Copy under the lock, invoke outside it: the listener journals through
  // NetServer, which must be free to call back into roster().
  std::function<void(std::uint64_t)> listener = rebuild_listener_;
  lock.unlock();
  if (listener) listener(next.version);
  return next;
}

void TeamManager::set_rebuild_listener(std::function<void(std::uint64_t)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  rebuild_listener_ = std::move(fn);
}

void TeamManager::restore_state(
    std::uint64_t version,
    const std::vector<std::pair<std::uint32_t, std::int32_t>>& assignments) {
  std::lock_guard<std::mutex> lock(mu_);
  roster_ = TeamRoster{};
  roster_.version = version;
  assignment_.clear();
  assignment_.reserve(assignments.size());
  for (const auto& [dev, a] : assignments) assignment_[dev] = a;
}

std::pair<std::uint64_t,
          std::vector<std::pair<std::uint32_t, std::int32_t>>>
TeamManager::export_state() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::uint32_t, std::int32_t>> out;
  out.reserve(assignment_.size());
  for (const auto& [dev, a] : assignment_) out.emplace_back(dev, a);
  std::sort(out.begin(), out.end());
  return {roster_.version, std::move(out)};
}

TeamRoster TeamManager::roster() const {
  std::lock_guard<std::mutex> lock(mu_);
  return roster_;
}

}  // namespace choir::net
