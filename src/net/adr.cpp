#include "net/adr.hpp"

#include <algorithm>
#include <cmath>

namespace choir::net {

double required_snr_db(int sf, const AdrOptions& opt) {
  return opt.required_snr_sf7_db - (sf - 7) * opt.sf_step_db;
}

AdrDecision recommend_adr(const DeviceSession& s, int current_sf,
                          double current_power_dbm, const AdrOptions& opt) {
  AdrDecision d;
  d.sf = std::clamp(current_sf, opt.min_sf, opt.max_sf);
  d.tx_power_dbm =
      std::clamp(current_power_dbm, opt.min_power_dbm, opt.max_power_dbm);
  if (s.snr_count < std::max<std::uint8_t>(1, opt.min_samples)) {
    d.changed = d.sf != current_sf || d.tx_power_dbm != current_power_dbm;
    return d;
  }

  d.headroom_db = s.max_snr_db() - required_snr_db(d.sf, opt) - opt.margin_db;
  int steps = static_cast<int>(std::floor(d.headroom_db / opt.step_db));

  // Spend headroom: faster data rate first, then lower power.
  while (steps > 0 && d.sf > opt.min_sf) {
    --d.sf;
    --steps;
  }
  while (steps > 0 && d.tx_power_dbm - opt.step_db >= opt.min_power_dbm) {
    d.tx_power_dbm -= opt.step_db;
    --steps;
  }
  // Recover a deficit: more power first (no airtime cost), then slower SF.
  while (steps < 0 && d.tx_power_dbm + opt.step_db <= opt.max_power_dbm) {
    d.tx_power_dbm += opt.step_db;
    ++steps;
  }
  while (steps < 0 && d.sf < opt.max_sf) {
    ++d.sf;
    ++steps;
  }

  d.changed = d.sf != current_sf || d.tx_power_dbm != current_power_dbm;
  return d;
}

}  // namespace choir::net
