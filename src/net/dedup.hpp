// Cross-gateway deduplication window.
//
// In an urban deployment several gateways hear overlapping device
// populations, so the same transmission arrives at the network server once
// per gateway within the radio-propagation + backhaul jitter window. The
// dedup stage keys receptions by (DevAddr, FCnt, payload hash) — the
// payload hash distinguishes a cross-gateway duplicate (same bits) from a
// genuine FCnt reuse (different bits, which the registry then rejects as a
// replay) — and admits exactly the first copy. Later copies inside the
// window are dropped, but their SNR is compared so the *retained* copy's
// metadata can be upgraded to the best reception (NetServer rewrites the
// stored frame and the registry's last-seen state in place).
//
// Sharded like the registry (hash of the key, per-shard mutex). Entries
// expire `window_s` after first sight, via a per-shard FIFO swept lazily
// on insert; a hard per-shard entry cap bounds memory under pathological
// traffic. Time is an explicit caller-provided monotonic value so the MAC
// simulator can run the window on simulated time and benches stay free of
// clock reads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace choir::net {

struct DedupOptions {
  /// How long after the first copy later copies still count as duplicates.
  double window_s = 0.5;
  /// log2 of the shard count.
  std::size_t shard_bits = 4;
  /// Hard cap on live entries per shard (oldest evicted first).
  std::size_t max_entries_per_shard = 1 << 15;
};

struct DedupKey {
  std::uint32_t dev_addr = 0;
  std::uint32_t fcnt = 0;
  std::uint64_t payload_hash = 0;

  bool operator==(const DedupKey&) const = default;
};

/// Sentinel feed index for frames that were not retained (rejected or
/// feed-keeping disabled).
inline constexpr std::uint64_t kNoFeedIndex = ~std::uint64_t{0};

struct DedupOutcome {
  bool duplicate = false;  ///< a copy of this key was already seen
  /// Duplicate only: this copy beats the best SNR seen so far.
  bool improved = false;
  /// Duplicate only: feed slot of the retained copy (kNoFeedIndex if the
  /// first copy was not retained).
  std::uint64_t feed_index = kNoFeedIndex;
  /// Duplicate only: merged trace id of the first copy (0 = untraced).
  /// The dedup window doubles as the cross-gateway trace-merge index:
  /// later copies append their journey to this trace.
  std::uint64_t trace_id = 0;
};

class CrossGatewayDedup {
 public:
  explicit CrossGatewayDedup(const DedupOptions& opt = {});

  CrossGatewayDedup(const CrossGatewayDedup&) = delete;
  CrossGatewayDedup& operator=(const CrossGatewayDedup&) = delete;

  /// Atomically classifies one reception: first sight inserts an entry
  /// (expiring at now_s + window_s) and reports duplicate=false; a repeat
  /// within the window reports duplicate=true and raises the entry's best
  /// SNR when this copy improves on it.
  DedupOutcome check_and_insert(const DedupKey& key, float snr_db,
                                double now_s);

  /// Records where the first copy of `key` was retained, so later
  /// higher-SNR duplicates can point NetServer at the slot to upgrade.
  void set_feed_index(const DedupKey& key, std::uint64_t feed_index);

  /// Records the merged trace id of `key`'s first copy, so later copies'
  /// stages land on the same trace row (no-op if the entry expired).
  void set_trace_id(const DedupKey& key, std::uint64_t trace_id);

  /// Live (unexpired, unevicted) entries across all shards.
  std::size_t pending() const;

 private:
  struct Entry {
    float best_snr_db = 0.0f;
    double expires_s = 0.0;
    std::uint64_t feed_index = kNoFeedIndex;
    std::uint64_t trace_id = 0;  ///< merged trace of the first copy
  };
  struct KeyHash {
    std::size_t operator()(const DedupKey& k) const {
      std::uint64_t h = k.payload_hash;
      h ^= (static_cast<std::uint64_t>(k.dev_addr) << 32) | k.fcnt;
      h *= 0x9E3779B97F4A7C15ULL;
      h ^= h >> 32;
      return static_cast<std::size_t>(h);
    }
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<DedupKey, Entry, KeyHash> entries;
    std::deque<std::pair<double, DedupKey>> fifo;  ///< (expiry, key)
  };

  Shard& shard_for(const DedupKey& key) const {
    return *shards_[KeyHash{}(key) & (shards_.size() - 1)];
  }
  static void sweep(Shard& sh, double now_s);

  DedupOptions opt_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace choir::net
