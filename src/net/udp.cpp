#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

namespace choir::net {

bool parse_endpoint(const std::string& s, Endpoint& out) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    return false;
  const std::string host = s.substr(0, colon);
  in_addr probe{};
  if (::inet_pton(AF_INET, host.c_str(), &probe) != 1) return false;
  long port = 0;
  for (std::size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    port = port * 10 + (s[i] - '0');
    if (port > 65535) return false;
  }
  if (port == 0) return false;
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

UdpUplinkSender::UdpUplinkSender(const std::string& host,
                                 std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("uplink sender: bad IPv4 address " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("uplink sender: socket() failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("uplink sender: connect() failed");
  }
}

UdpUplinkSender::~UdpUplinkSender() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpUplinkSender::send(const std::vector<UplinkFrame>& frames) {
  if (frames.empty()) return;
  for (const auto& dgram : encode_datagrams(frames)) {
    // UDP: a failed send is a lost datagram, same as a drop in flight.
    (void)::send(fd_, dgram.data(), dgram.size(), MSG_NOSIGNAL);
    datagrams_.fetch_add(1, std::memory_order_relaxed);
  }
}

UdpIngestServer::UdpIngestServer(NetServer& server, std::uint16_t port,
                                 bool bind_any)
    : server_(server) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("udp ingest: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("udp ingest: cannot bind port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
}

UdpIngestServer::~UdpIngestServer() { stop(); }

void UdpIngestServer::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(fd_, SHUT_RDWR);  // unblocks a pending recv on most stacks
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void UdpIngestServer::serve() {
  std::vector<std::uint8_t> buf(64 * 1024);
  std::vector<UplinkFrame> frames;
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100 /* ms */);
    if (pr <= 0 || !(pfd.revents & POLLIN)) continue;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n <= 0) continue;
    frames.clear();
    if (!decode_datagram(buf.data(), static_cast<std::size_t>(n), frames)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    datagrams_.fetch_add(1, std::memory_order_relaxed);
    for (auto& f : frames) server_.ingest(std::move(f));
  }
}

}  // namespace choir::net
