#include "net/udp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <stdexcept>

#include "obs/obs.hpp"

namespace choir::net {

namespace {

void put_le32(std::string& s, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}
void put_le64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>(v >> (8 * i)));
}
std::uint32_t get_le32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}
std::uint64_t get_le64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::string encode_ack(const UplinkAck& a) {
  std::string out;
  out.reserve(kAckBytes);
  put_le32(out, kAckMagic);
  out.push_back(static_cast<char>(kAckVersion));
  out.push_back(static_cast<char>(a.status));
  out.push_back(0);  // reserved
  out.push_back(0);
  put_le64(out, a.epoch);
  put_le64(out, a.datagram_hash);
  return out;
}

bool decode_ack(const std::uint8_t* data, std::size_t len, UplinkAck& out) {
  if (len != kAckBytes) return false;
  if (get_le32(data) != kAckMagic || data[4] != kAckVersion) return false;
  out.status = data[5];
  out.epoch = get_le64(data + 8);
  out.datagram_hash = get_le64(data + 16);
  return true;
}

bool parse_endpoint(const std::string& s, Endpoint& out) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    return false;
  const std::string host = s.substr(0, colon);
  in_addr probe{};
  if (::inet_pton(AF_INET, host.c_str(), &probe) != 1) return false;
  long port = 0;
  for (std::size_t i = colon + 1; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    port = port * 10 + (s[i] - '0');
    if (port > 65535) return false;
  }
  if (port == 0) return false;
  out.host = host;
  out.port = static_cast<std::uint16_t>(port);
  return true;
}

UdpUplinkSender::UdpUplinkSender(const std::string& host,
                                 std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("uplink sender: bad IPv4 address " + host);
  }
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("uplink sender: socket() failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("uplink sender: connect() failed");
  }
}

UdpUplinkSender::~UdpUplinkSender() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpUplinkSender::send(const std::vector<UplinkFrame>& frames) {
  if (frames.empty()) return;
  for (const auto& dgram : encode_datagrams(frames)) {
    // UDP: a failed send is a lost datagram, same as a drop in flight.
    (void)::send(fd_, dgram.data(), dgram.size(), MSG_NOSIGNAL);
    datagrams_.fetch_add(1, std::memory_order_relaxed);
  }
}

UdpIngestServer::UdpIngestServer(NetServer& server, std::uint16_t port,
                                 UdpIngestOptions opts)
    : server_(server), opts_(std::move(opts)) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("udp ingest: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (opts_.rcvbuf_bytes > 0) {
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &opts_.rcvbuf_bytes,
                 sizeof(opts_.rcvbuf_bytes));
  }
  socklen_t optlen = sizeof(rcvbuf_actual_);
  ::getsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_actual_, &optlen);
  CHOIR_OBS_GAUGE_SET("net.udp.rcvbuf_bytes",
                      static_cast<std::int64_t>(rcvbuf_actual_));
#ifdef SO_RXQ_OVFL
  // Ask the kernel to piggyback its cumulative socket-drop count on every
  // received datagram; serve() turns it into the rcvbuf_dropped counter.
  ::setsockopt(fd_, SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof(one));
#endif
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(opts_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("udp ingest: cannot bind port " +
                             std::to_string(port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve(); });
}

UdpIngestServer::~UdpIngestServer() { stop(); }

void UdpIngestServer::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(fd_, SHUT_RDWR);  // unblocks a pending recv on most stacks
  if (thread_.joinable()) thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void UdpIngestServer::serve() {
  std::vector<std::uint8_t> buf(64 * 1024);
  std::vector<UplinkFrame> frames;
  std::uint64_t last_ovfl = 0;
  bool ovfl_seen = false;
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 100 /* ms */);
    if (pr <= 0 || !(pfd.revents & POLLIN)) continue;

    sockaddr_in src{};
    iovec iov{buf.data(), buf.size()};
    alignas(cmsghdr) char cbuf[64];
    msghdr msg{};
    msg.msg_name = &src;
    msg.msg_namelen = sizeof(src);
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    msg.msg_control = cbuf;
    msg.msg_controllen = sizeof(cbuf);
    const ssize_t n = ::recvmsg(fd_, &msg, 0);
    if (n <= 0) continue;

#ifdef SO_RXQ_OVFL
    for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c; c = CMSG_NXTHDR(&msg, c)) {
      if (c->cmsg_level != SOL_SOCKET || c->cmsg_type != SO_RXQ_OVFL) continue;
      std::uint32_t ovfl = 0;
      std::memcpy(&ovfl, CMSG_DATA(c), sizeof(ovfl));
      // The cmsg carries a cumulative per-socket drop count; export the
      // delta. The first sample sets the baseline (drops before our
      // first successful recv are unattributable anyway).
      if (ovfl_seen && ovfl > last_ovfl) {
        const std::uint64_t d = ovfl - last_ovfl;
        rcvbuf_dropped_.fetch_add(d, std::memory_order_relaxed);
        CHOIR_OBS_COUNT("net.udp.rcvbuf_dropped", d);
      }
      last_ovfl = ovfl;
      ovfl_seen = true;
    }
#endif

    if (opts_.send_acks) {
      UplinkAck ack;
      if (opts_.ack_role) {
        const auto [status, epoch] = opts_.ack_role();
        ack.status = status;
        ack.epoch = epoch;
      }
      ack.datagram_hash = fnv1a64(buf.data(), static_cast<std::size_t>(n));
      const std::string wire = encode_ack(ack);
      (void)::sendto(fd_, wire.data(), wire.size(), MSG_NOSIGNAL,
                     reinterpret_cast<sockaddr*>(&src), msg.msg_namelen);
      if (ack.status != kAckActive) continue;  // not serving: ack only
    }

    frames.clear();
    if (!decode_datagram(buf.data(), static_cast<std::size_t>(n), frames)) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    datagrams_.fetch_add(1, std::memory_order_relaxed);
    for (auto& f : frames) server_.ingest(std::move(f));
  }
}

}  // namespace choir::net
