#include "net/server.hpp"

#include <cstdio>

namespace choir::net {

const char* ingest_status_name(IngestStatus s) {
  switch (s) {
    case IngestStatus::kAccepted:
      return "accepted";
    case IngestStatus::kDuplicate:
      return "duplicate";
    case IngestStatus::kReplay:
      return "replay";
    case IngestStatus::kUnknownDevice:
      return "unknown_device";
    case IngestStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

std::string format_stats(const NetServerStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  uplinks in          : %llu\n"
                "  accepted            : %llu\n"
                "  dedup dropped       : %llu (%llu upgraded)\n"
                "  replay rejected     : %llu\n"
                "  unknown device      : %llu\n"
                "  malformed           : %llu\n",
                static_cast<unsigned long long>(s.uplinks),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.dedup_dropped),
                static_cast<unsigned long long>(s.dedup_upgraded),
                static_cast<unsigned long long>(s.replay_rejected),
                static_cast<unsigned long long>(s.unknown_device),
                static_cast<unsigned long long>(s.malformed));
  return buf;
}

NetServer::NetServer(const NetServerConfig& cfg)
    : cfg_(cfg),
      registry_(cfg.registry),
      dedup_(cfg.dedup),
      teams_(registry_, cfg.teams) {
  if constexpr (obs::kEnabled) {
    auto& r = obs::registry();
    reg_uplinks_ = &r.counter("net.uplinks");
    reg_accepted_ = &r.counter("net.accepted");
    reg_dedup_dropped_ = &r.counter("net.dedup_dropped");
    reg_dedup_upgraded_ = &r.counter("net.dedup_upgraded");
    reg_replay_rejected_ = &r.counter("net.replay_rejected");
    reg_unknown_device_ = &r.counter("net.unknown_device");
    reg_malformed_ = &r.counter("net.malformed");
  }
}

IngestResult NetServer::ingest(UplinkFrame frame) {
  return ingest_at(std::move(frame), wall_now_s());
}

IngestResult NetServer::ingest_at(UplinkFrame frame, double now_s) {
  uplinks_.fetch_add(1, relaxed);
  if constexpr (obs::kEnabled) reg_uplinks_->add(1);

  IngestResult res;
  res.dev_addr = frame.dev_addr;
  res.fcnt = frame.fcnt;

  if (frame.payload.empty() || frame.sf < 5 || frame.sf > 12) {
    malformed_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_malformed_->add(1);
    res.status = IngestStatus::kMalformed;
    return res;
  }

  // Dedup before the replay window: a cross-gateway copy shares the FCnt
  // of the frame the registry just accepted (see header comment).
  DedupKey key{frame.dev_addr, frame.fcnt, payload_hash(frame.payload)};
  const DedupOutcome dup = dedup_.check_and_insert(key, frame.snr_db, now_s);
  if (dup.duplicate) {
    dedup_dropped_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_dedup_dropped_->add(1);
    if (dup.improved) {
      dedup_upgraded_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_dedup_upgraded_->add(1);
      registry_.note_better_copy(frame);
      if (dup.feed_index != kNoFeedIndex) {
        std::lock_guard<std::mutex> lock(feed_mu_);
        if (dup.feed_index < feed_.size()) {
          UplinkFrame& kept = feed_[dup.feed_index];
          kept.gateway_id = frame.gateway_id;
          kept.channel = frame.channel;
          kept.stream_offset = frame.stream_offset;
          kept.snr_db = frame.snr_db;
          kept.cfo_bins = frame.cfo_bins;
          kept.timing_samples = frame.timing_samples;
        }
      }
      res.upgraded = true;
    }
    res.status = IngestStatus::kDuplicate;
    return res;
  }

  switch (registry_.accept(frame)) {
    case FcntCheck::kReplay:
      replay_rejected_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_replay_rejected_->add(1);
      res.status = IngestStatus::kReplay;
      return res;
    case FcntCheck::kUnknownDevice:
      unknown_device_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_unknown_device_->add(1);
      res.status = IngestStatus::kUnknownDevice;
      return res;
    case FcntCheck::kAccepted:
      break;
  }

  accepted_.fetch_add(1, relaxed);
  if constexpr (obs::kEnabled) reg_accepted_->add(1);
  if (on_accept_) on_accept_(frame);
  if (cfg_.keep_feed) {
    std::uint64_t idx = 0;
    {
      std::lock_guard<std::mutex> lock(feed_mu_);
      idx = feed_.size();
      feed_.push_back(std::move(frame));
    }
    dedup_.set_feed_index(key, idx);
  }
  res.status = IngestStatus::kAccepted;
  return res;
}

std::vector<UplinkFrame> NetServer::drain_feed() {
  std::lock_guard<std::mutex> lock(feed_mu_);
  std::vector<UplinkFrame> out;
  out.swap(feed_);
  return out;
}

std::size_t NetServer::feed_size() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return feed_.size();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.uplinks = uplinks_.load(relaxed);
  s.accepted = accepted_.load(relaxed);
  s.dedup_dropped = dedup_dropped_.load(relaxed);
  s.dedup_upgraded = dedup_upgraded_.load(relaxed);
  s.replay_rejected = replay_rejected_.load(relaxed);
  s.unknown_device = unknown_device_.load(relaxed);
  s.malformed = malformed_.load(relaxed);
  return s;
}

AdrDecision NetServer::adr_for(std::uint32_t dev_addr, int current_sf,
                               double current_power_dbm) const {
  const auto session = registry_.lookup(dev_addr);
  if (!session) {
    AdrDecision d;
    d.sf = current_sf;
    d.tx_power_dbm = current_power_dbm;
    return d;
  }
  return recommend_adr(*session, current_sf, current_power_dbm, cfg_.adr);
}

void NetServer::note_adr_applied(std::uint32_t dev_addr) {
  registry_.clear_snr_history(dev_addr);
}

}  // namespace choir::net
