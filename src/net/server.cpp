#include "net/server.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace choir::net {

using persist::JournalRecord;
using persist::RecordType;
using persist::RejectKind;

const char* ingest_status_name(IngestStatus s) {
  switch (s) {
    case IngestStatus::kAccepted:
      return "accepted";
    case IngestStatus::kDuplicate:
      return "duplicate";
    case IngestStatus::kReplay:
      return "replay";
    case IngestStatus::kUnknownDevice:
      return "unknown_device";
    case IngestStatus::kMalformed:
      return "malformed";
  }
  return "?";
}

std::string format_stats(const NetServerStats& s) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  uplinks in          : %llu\n"
                "  accepted            : %llu\n"
                "  dedup dropped       : %llu (%llu upgraded)\n"
                "  replay rejected     : %llu\n"
                "  unknown device      : %llu\n"
                "  malformed           : %llu\n",
                static_cast<unsigned long long>(s.uplinks),
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.dedup_dropped),
                static_cast<unsigned long long>(s.dedup_upgraded),
                static_cast<unsigned long long>(s.replay_rejected),
                static_cast<unsigned long long>(s.unknown_device),
                static_cast<unsigned long long>(s.malformed));
  return buf;
}

NetServer::NetServer(const NetServerConfig& cfg)
    : cfg_(cfg),
      registry_(cfg.registry),
      dedup_(cfg.dedup),
      teams_(registry_, cfg.teams) {
  if constexpr (obs::kEnabled) {
    auto& r = obs::registry();
    reg_uplinks_ = &r.counter("net.uplinks");
    reg_accepted_ = &r.counter("net.accepted");
    reg_dedup_dropped_ = &r.counter("net.dedup_dropped");
    reg_dedup_upgraded_ = &r.counter("net.dedup_upgraded");
    reg_replay_rejected_ = &r.counter("net.replay_rejected");
    reg_unknown_device_ = &r.counter("net.unknown_device");
    reg_malformed_ = &r.counter("net.malformed");
    for (int sf = 5; sf <= 12; ++sf) {
      reg_accepted_sf_[static_cast<std::size_t>(sf - 5)] = &r.counter(
          obs::labeled("net.accepted", {{"sf", std::to_string(sf)}}));
    }
    hist_ingest_ = &r.histogram("net.ingest_us");
    hist_dedup_ = &r.histogram("net.dedup_us");
    hist_replay_ = &r.histogram("net.replay_us");
    hist_adr_ = &r.histogram("net.adr_us");
    hist_journal_ = &r.histogram("net.persist.journal_us");
    hist_accept_ = &r.histogram("net.accept_us");
  }
  if (!cfg_.persist.dir.empty()) {
    persist_ = std::make_unique<persist::Persistence>(cfg_.persist,
                                                      registry_.n_shards());
    restore_from_disk();
    // Startup checkpoint: seal whatever recovery found (including torn
    // journal tails) into a brand-new generation, so this process never
    // appends after damage. If a crash point fires inside, the exception
    // propagates and the half-built NetServer is destroyed — exactly a
    // process that died during its startup checkpoint.
    persist_->begin_generation(snapshot_image());
    CHOIR_OBS_COUNT("net.persist.snapshots", 1);
    CHOIR_OBS_GAUGE_SET("net.persist.generation",
                        static_cast<std::int64_t>(persist_->generation()));
    install_roster_listener();
  }
}

void NetServer::install_roster_listener() {
  teams_.set_rebuild_listener([this](std::uint64_t version) {
    std::shared_lock<std::shared_mutex> gate(persist_gate_);
    JournalRecord r;
    r.type = RecordType::kRoster;
    r.roster_version = version;
    persist_->append(0, r);  // the roster is global; shard 0 by convention
  });
}

void NetServer::restore_image(const persist::SnapshotImage& image) {
  if (image.shard_bits != cfg_.registry.shard_bits)
    throw std::runtime_error(
        "persist: snapshot was written with shard_bits=" +
        std::to_string(image.shard_bits) + " but this server is configured " +
        "with shard_bits=" + std::to_string(cfg_.registry.shard_bits) +
        "; refusing to guess a re-sharding (restart with the original "
        "shard count, or discard the state dir)");

  for (std::size_t i = 0; i < image.shards.size(); ++i)
    registry_.restore_shard(i, image.shards[i]);
  registry_.restore_evicted(image.evicted);

  // NetServerStats atomics are restored; the obs registry's counters are
  // process-lifetime by design and intentionally left at zero.
  uplinks_.store(image.counters.uplinks, relaxed);
  accepted_.store(image.counters.accepted, relaxed);
  dedup_dropped_.store(image.counters.dedup_dropped, relaxed);
  dedup_upgraded_.store(image.counters.dedup_upgraded, relaxed);
  replay_rejected_.store(image.counters.replay_rejected, relaxed);
  unknown_device_.store(image.counters.unknown_device, relaxed);
  malformed_.store(image.counters.malformed, relaxed);
}

void NetServer::restore_from_disk() {
  persist::SnapshotImage image;
  std::vector<std::vector<JournalRecord>> shard_records;
  if (!persist_->recover(image, shard_records, recovery_)) return;

  restore_image(image);

  std::uint64_t roster_version = image.team_version;

  // Replay the journals through the real registry code paths so EWMAs,
  // SNR rings and eviction order come out bit-for-bit identical to the
  // dead process's registry at its last durable write.
  for (const auto& records : shard_records)
    for (const JournalRecord& r : records) apply_record(r, roster_version);

  teams_.restore_state(roster_version, image.assignments);

  CHOIR_OBS_COUNT("net.persist.recovery.replayed", recovery_.replayed);
  CHOIR_OBS_COUNT("net.persist.recovery.discarded", recovery_.discarded);
  CHOIR_OBS_COUNT("net.persist.recovery.damaged_journals",
                  recovery_.damaged_journals);
}

void NetServer::apply_record(const JournalRecord& r,
                             std::uint64_t& max_roster_version) {
  switch (r.type) {
    case RecordType::kEpoch:
      return;  // generation metadata, not state — nothing to replay
    case RecordType::kProvision:
      registry_.provision(r.dev_addr, r.x_m, r.y_m);
      ++recovery_.replayed;
      return;
    case RecordType::kAdrApplied:
      registry_.clear_snr_history(r.dev_addr);
      ++recovery_.replayed;
      return;
    case RecordType::kRoster:
      if (r.roster_version > max_roster_version)
        max_roster_version = r.roster_version;
      ++recovery_.replayed;
      return;
    case RecordType::kAccept:
    case RecordType::kReject:
      break;
  }

  // Ingest records. Counters follow the journal (that is what the dead
  // process counted); the registry is driven through accept() /
  // note_better_copy() so session state evolves exactly as it did live.
  // A result that disagrees with the record means journal-append order
  // raced registry order across threads for one device — possible only
  // with concurrent same-device traffic, never in the simulator (devices
  // are pinned to workers); counted as discarded, never fatal.
  uplinks_.fetch_add(1, relaxed);
  if (r.type == RecordType::kAccept) {
    accepted_.fetch_add(1, relaxed);
    if (registry_.accept(r.frame) == FcntCheck::kAccepted)
      ++recovery_.replayed;
    else
      ++recovery_.discarded;
    return;
  }
  switch (r.reject_kind) {
    case RejectKind::kDedup:
      dedup_dropped_.fetch_add(1, relaxed);
      if (r.upgraded) {
        dedup_upgraded_.fetch_add(1, relaxed);
        registry_.note_better_copy(r.frame);
      }
      ++recovery_.replayed;
      return;
    case RejectKind::kReplay:
      replay_rejected_.fetch_add(1, relaxed);
      // Re-offering the frame reproduces the session's replays counter.
      if (registry_.accept(r.frame) == FcntCheck::kReplay)
        ++recovery_.replayed;
      else
        ++recovery_.discarded;
      return;
    case RejectKind::kUnknownDevice:
      unknown_device_.fetch_add(1, relaxed);
      ++recovery_.replayed;
      return;
    case RejectKind::kMalformed:
      malformed_.fetch_add(1, relaxed);
      ++recovery_.replayed;
      return;
  }
}

persist::SnapshotImage NetServer::snapshot_image() const {
  persist::SnapshotImage img;
  img.counters = stats();
  img.evicted = registry_.evicted();
  auto [version, assignments] = teams_.export_state();
  img.team_version = version;
  img.assignments = std::move(assignments);
  img.shard_bits = static_cast<std::uint32_t>(cfg_.registry.shard_bits);
  img.shards.resize(registry_.n_shards());
  for (std::size_t i = 0; i < registry_.n_shards(); ++i)
    img.shards[i] = registry_.dump_shard(i);
  return img;
}

void NetServer::restore_snapshot(const persist::SnapshotImage& image) {
  restore_image(image);
  teams_.restore_state(image.team_version, image.assignments);
  replicated_roster_version_ = image.team_version;
  recovery_.restored = true;
  recovery_.snapshot_sessions = 0;
  for (const auto& shard : image.shards)
    recovery_.snapshot_sessions += shard.size();
}

void NetServer::apply_replicated(const persist::JournalRecord& r) {
  std::uint64_t v = replicated_roster_version_;
  apply_record(r, v);
  if (v != replicated_roster_version_) {
    // A kRoster record: bump the roster version. Assignments themselves
    // travel in snapshots (kRoster only carries the version, exactly as
    // in disk recovery).
    auto [cur, assignments] = teams_.export_state();
    (void)cur;
    teams_.restore_state(v, assignments);
    replicated_roster_version_ = v;
  }
}

void NetServer::attach_persistence(const persist::PersistOptions& opt,
                                   std::uint64_t on_disk_generation) {
  if (persist_)
    throw std::runtime_error("netserver: persistence already attached");
  if (opt.dir.empty())
    throw std::runtime_error("netserver: attach_persistence needs a dir");
  cfg_.persist = opt;
  persist_ =
      std::make_unique<persist::Persistence>(opt, registry_.n_shards());
  persist_->adopt_generation(on_disk_generation);
  // Seal the takeover generation on top of the followed state. The epoch
  // fence inside rejects us if an even newer epoch committed meanwhile.
  persist_->begin_generation(snapshot_image());
  // The replica's recovery stats already count its streamed replay
  // (restore_snapshot / apply_replicated); stamp where it caught up to.
  if (recovery_.restored) {
    recovery_.generation = on_disk_generation;
    recovery_.epoch = opt.epoch;
  }
  CHOIR_OBS_COUNT("net.persist.snapshots", 1);
  CHOIR_OBS_GAUGE_SET("net.persist.generation",
                      static_cast<std::int64_t>(persist_->generation()));
  install_roster_listener();
}

void NetServer::with_ingest_quiesced(const std::function<void()>& fn) {
  if (!persist_) {
    fn();
    return;
  }
  std::unique_lock<std::shared_mutex> gate(persist_gate_);
  fn();
}

void NetServer::checkpoint() {
  if (!persist_) return;
  std::unique_lock<std::shared_mutex> gate(persist_gate_);
  const auto t0 = std::chrono::steady_clock::now();
  persist_->begin_generation(snapshot_image());
  CHOIR_OBS_COUNT("net.persist.snapshots", 1);
  CHOIR_OBS_GAUGE_SET("net.persist.generation",
                      static_cast<std::int64_t>(persist_->generation()));
  CHOIR_OBS_HIST(
      "net.persist.checkpoint_us",
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count()));
}

void NetServer::provision(std::uint32_t dev_addr, double x_m, double y_m) {
  if (!persist_) {
    registry_.provision(dev_addr, x_m, y_m);
    return;
  }
  std::shared_lock<std::shared_mutex> gate(persist_gate_);
  registry_.provision(dev_addr, x_m, y_m);
  JournalRecord r;
  r.type = RecordType::kProvision;
  r.dev_addr = dev_addr;
  r.x_m = x_m;
  r.y_m = y_m;
  persist_->append(registry_.shard_index(dev_addr), r);
}

IngestResult NetServer::ingest(UplinkFrame frame) {
  return ingest_at(std::move(frame), wall_now_s());
}

IngestResult NetServer::ingest_at(UplinkFrame frame, double now_s) {
  if (!persist_) return ingest_impl(frame, now_s);
  // Shared gate: many ingests in parallel, but never across a checkpoint.
  std::shared_lock<std::shared_mutex> gate(persist_gate_);
  return ingest_impl(frame, now_s);
}

void NetServer::journal_ingest(const IngestResult& res,
                               const UplinkFrame& frame) {
  JournalRecord r;
  r.frame = frame;
  r.frame.payload.clear();  // replay windows never read payload bytes
  switch (res.status) {
    case IngestStatus::kAccepted:
      r.type = RecordType::kAccept;
      break;
    case IngestStatus::kDuplicate:
      r.type = RecordType::kReject;
      r.reject_kind = RejectKind::kDedup;
      r.upgraded = res.upgraded;
      break;
    case IngestStatus::kReplay:
      r.type = RecordType::kReject;
      r.reject_kind = RejectKind::kReplay;
      break;
    case IngestStatus::kUnknownDevice:
      r.type = RecordType::kReject;
      r.reject_kind = RejectKind::kUnknownDevice;
      break;
    case IngestStatus::kMalformed:
      r.type = RecordType::kReject;
      r.reject_kind = RejectKind::kMalformed;
      break;
  }
  persist_->append(registry_.shard_index(frame.dev_addr), r);
  CHOIR_OBS_COUNT("net.persist.journal.records", 1);
}

namespace {

// Manual span timing instead of TraceSpan RAII: the collector pointer is
// null for every untraced frame, and these fold to a single null check so
// the untraced hot path pays one branch per site, no clock reads.
inline double span_begin(const obs::TraceCollector* col) {
  return col != nullptr ? obs::trace_now_us() : 0.0;
}

inline void span_end(obs::TraceCollector* col, const char* name, double t0,
                     obs::Histogram* hist, std::uint64_t arg = 0) {
  if (col == nullptr) return;
  const double dur = obs::trace_now_us() - t0;
  col->add(name, t0, dur, arg);
  // Span latency histograms sample traced frames only — by design, so the
  // bench-guarded untraced path stays clock-free.
  if (hist != nullptr) hist->record(dur);
}

}  // namespace

IngestResult NetServer::ingest_impl(UplinkFrame& frame, double now_s) {
  uplinks_.fetch_add(1, relaxed);
  if constexpr (obs::kEnabled) reg_uplinks_->add(1);

  // Cross-tier tracing: only frames whose CHOU record carried a trace
  // stamp collect spans. The collector is thread-local so concurrent
  // ingest threads never share one, and reused so steady state does not
  // allocate.
  obs::TraceCollector* col = nullptr;
  double t_ingest0 = 0.0;
  if constexpr (obs::kEnabled) {
    if (frame.trace_id != 0) {
      static thread_local obs::TraceCollector collector;
      collector.clear();
      col = &collector;
      t_ingest0 = obs::trace_now_us();
      if (frame.emitted_unix_us != 0) {
        // Synthesize the gateway's emission instant on this process's
        // timeline (unix-µs travels between processes; steady clocks do
        // not) and span the backhaul flight time when it is positive —
        // cross-host clock skew can make it negative, in which case only
        // the instant is kept.
        const double t_emit = obs::trace_us_from_unix(frame.emitted_unix_us);
        col->add("net.gw.copy", t_emit, 0.0, frame.gateway_id);
        if (t_emit < t_ingest0)
          col->add("net.backhaul", t_emit, t_ingest0 - t_emit,
                   frame.gateway_id);
      } else {
        col->add("net.gw.copy", t_ingest0, 0.0, frame.gateway_id);
      }
    }
  }

  // Every classification journals (when persistence is on) under the
  // net.persist.journal span — append + any size-triggered flush.
  const auto journal = [&](const IngestResult& r) {
    if (!persist_) return;
    const double t0 = span_begin(col);
    journal_ingest(r, frame);
    span_end(col, "net.persist.journal", t0, hist_journal_);
  };

  IngestResult res;
  res.dev_addr = frame.dev_addr;
  res.fcnt = frame.fcnt;

  if (frame.payload.empty() || frame.sf < 5 || frame.sf > 12) {
    malformed_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_malformed_->add(1);
    res.status = IngestStatus::kMalformed;
    journal(res);
    if (col != nullptr) finish_trace(col, frame, res, nullptr, 0, t_ingest0);
    return res;
  }

  // Dedup before the replay window: a cross-gateway copy shares the FCnt
  // of the frame the registry just accepted (see header comment).
  DedupKey key{frame.dev_addr, frame.fcnt, payload_hash(frame.payload)};
  double t0 = span_begin(col);
  const DedupOutcome dup = dedup_.check_and_insert(key, frame.snr_db, now_s);
  span_end(col, "net.dedup", t0, hist_dedup_);
  if (dup.duplicate) {
    dedup_dropped_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_dedup_dropped_->add(1);
    if (dup.improved) {
      dedup_upgraded_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_dedup_upgraded_->add(1);
      registry_.note_better_copy(frame);
      if (dup.feed_index != kNoFeedIndex) {
        std::lock_guard<std::mutex> lock(feed_mu_);
        if (dup.feed_index < feed_.size()) {
          UplinkFrame& kept = feed_[dup.feed_index];
          kept.gateway_id = frame.gateway_id;
          kept.channel = frame.channel;
          kept.stream_offset = frame.stream_offset;
          kept.snr_db = frame.snr_db;
          kept.cfo_bins = frame.cfo_bins;
          kept.timing_samples = frame.timing_samples;
        }
      }
      res.upgraded = true;
    }
    res.status = IngestStatus::kDuplicate;
    journal(res);
    if (col != nullptr)
      finish_trace(col, frame, res, &key, dup.trace_id, t_ingest0);
    return res;
  }

  RegistryTiming timing;
  t0 = span_begin(col);
  const FcntCheck check =
      registry_.accept(frame, col != nullptr ? &timing : nullptr);
  span_end(col, "net.replay", t0, hist_replay_);
  if (col != nullptr) {
    // The shard critical section, placed at the measured acquisition time
    // so lock *wait* shows as the gap between net.replay's start and this.
    col->add("net.registry", timing.lock_acquired_us, timing.lock_hold_us,
             timing.shard);
  }
  switch (check) {
    case FcntCheck::kReplay:
      replay_rejected_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_replay_rejected_->add(1);
      res.status = IngestStatus::kReplay;
      journal(res);
      if (col != nullptr) finish_trace(col, frame, res, &key, 0, t_ingest0);
      return res;
    case FcntCheck::kUnknownDevice:
      unknown_device_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_unknown_device_->add(1);
      res.status = IngestStatus::kUnknownDevice;
      journal(res);
      if (col != nullptr) finish_trace(col, frame, res, &key, 0, t_ingest0);
      return res;
    case FcntCheck::kAccepted:
      break;
  }

  accepted_.fetch_add(1, relaxed);
  if constexpr (obs::kEnabled) {
    reg_accepted_->add(1);
    reg_accepted_sf_[static_cast<std::size_t>(frame.sf - 5)]->add(1);
  }
  res.status = IngestStatus::kAccepted;

  if (col != nullptr) {
    // What the ADR planner would recommend for this device right now —
    // const, evaluated for its latency on traced frames only (the real
    // control plane asks on its own schedule).
    const double t_adr = span_begin(col);
    (void)adr_for(frame.dev_addr, frame.sf, 14.0);
    span_end(col, "net.adr", t_adr, hist_adr_);
  }

  // Durable-before-confirmed: the journal write happens before the
  // callback and feed see the frame. A crash between the registry update
  // and this append loses the in-memory acceptance with the process —
  // the disk (which never saw it) stays authoritative, and the frame was
  // never confirmed downstream, so re-offering it after restart is safe.
  journal(res);
  t0 = span_begin(col);
  if (on_accept_) on_accept_(frame);
  if (cfg_.keep_feed) {
    std::uint64_t idx = 0;
    {
      std::lock_guard<std::mutex> lock(feed_mu_);
      idx = feed_.size();
      feed_.push_back(std::move(frame));
    }
    dedup_.set_feed_index(key, idx);
  }
  // Scalar frame fields survive the move above (only the payload vector's
  // storage moved), so finish_trace may still read identity fields.
  span_end(col, "net.accept", t0, hist_accept_);
  if (col != nullptr) finish_trace(col, frame, res, &key, 0, t_ingest0);
  return res;
}

void NetServer::finish_trace(obs::TraceCollector* col,
                             const UplinkFrame& frame, const IngestResult& res,
                             const DedupKey* key, std::uint64_t dup_trace_id,
                             double t_ingest0) {
  if (col == nullptr) return;
  const double dur = obs::trace_now_us() - t_ingest0;
  col->add("net.ingest", t_ingest0, dur);
  if (hist_ingest_ != nullptr) hist_ingest_->record(dur);

  auto& log = obs::trace_log();
  obs::TraceId merged = 0;
  if (res.status == IngestStatus::kDuplicate && dup_trace_id != 0) {
    // Another gateway's copy of a transmission whose first copy was also
    // traced: fold this copy's stages (gateway-side ones included when the
    // gateway ran in-process) into the dedup winner's row.
    merged = dup_trace_id;
    log.absorb(merged, frame.trace_id);
  } else {
    // First traced copy (or the winner was untraced): this trace becomes
    // the transmission's merged row, and the dedup entry remembers it so
    // later copies land here.
    obs::FrameTrace server_side;
    server_side.channel = frame.channel;
    server_side.sf = frame.sf;
    server_side.stream_offset = frame.stream_offset;
    server_side.crc_ok = true;
    server_side.dev_addr = frame.dev_addr;
    server_side.fcnt = frame.fcnt;
    merged = log.adopt(frame.trace_id, std::move(server_side));
    if (key != nullptr) dedup_.set_trace_id(*key, merged);
  }
  log.add_stages(merged, col->stages());
  if (res.status == IngestStatus::kAccepted) log.complete(merged);
  col->clear();
}

std::vector<UplinkFrame> NetServer::drain_feed() {
  std::lock_guard<std::mutex> lock(feed_mu_);
  std::vector<UplinkFrame> out;
  out.swap(feed_);
  return out;
}

std::size_t NetServer::feed_size() const {
  std::lock_guard<std::mutex> lock(feed_mu_);
  return feed_.size();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.uplinks = uplinks_.load(relaxed);
  s.accepted = accepted_.load(relaxed);
  s.dedup_dropped = dedup_dropped_.load(relaxed);
  s.dedup_upgraded = dedup_upgraded_.load(relaxed);
  s.replay_rejected = replay_rejected_.load(relaxed);
  s.unknown_device = unknown_device_.load(relaxed);
  s.malformed = malformed_.load(relaxed);
  return s;
}

AdrDecision NetServer::adr_for(std::uint32_t dev_addr, int current_sf,
                               double current_power_dbm) const {
  const auto session = registry_.lookup(dev_addr);
  if (!session) {
    AdrDecision d;
    d.sf = current_sf;
    d.tx_power_dbm = current_power_dbm;
    return d;
  }
  return recommend_adr(*session, current_sf, current_power_dbm, cfg_.adr);
}

void NetServer::note_adr_applied(std::uint32_t dev_addr) {
  if (!persist_) {
    registry_.clear_snr_history(dev_addr);
    return;
  }
  std::shared_lock<std::shared_mutex> gate(persist_gate_);
  registry_.clear_snr_history(dev_addr);
  JournalRecord r;
  r.type = RecordType::kAdrApplied;
  r.dev_addr = dev_addr;
  persist_->append(registry_.shard_index(dev_addr), r);
}

}  // namespace choir::net
