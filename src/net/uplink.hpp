// Uplink frame: the unit of traffic between gateways and the network
// server.
//
// A gateway (the PHY tier, src/gateway/) decodes frames out of IQ; the
// network server (this tier) only ever sees the decoded result plus the
// reception metadata the collision decoder measured — SNR, CFO and timing
// offsets, which double as a soft device fingerprint. Frames reach the
// server either through the in-process API (NetServer::ingest) or over a
// length-prefixed UDP framing (src/net/udp.hpp) emitted by
// `choir_gateway --uplink-dest`.
//
// Device addressing rides inside the payload ("compact header", the same
// convention the MAC simulator has always used):
//   payload[0]          DevAddr (8-bit device address)
//   payload[1..2]       FCnt, little-endian 16-bit uplink frame counter
// Payloads shorter than 3 bytes get a synthetic DevAddr derived from the
// payload hash (bit 24 set to keep it out of the compact range) so that
// anonymous traffic still deduplicates across gateways. The registry and
// the wire format carry 32-bit DevAddr / FCnt so richer headers can slot
// in without a format change (see docs/NETSERVER.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace choir::net {

struct UplinkFrame {
  std::uint32_t gateway_id = 0;  ///< which gateway heard this reception
  std::uint16_t channel = 0;     ///< channelizer output index at the gateway
  std::uint8_t sf = 0;           ///< spreading factor of the pipeline
  std::uint32_t dev_addr = 0;    ///< device address (from the payload header)
  std::uint32_t fcnt = 0;        ///< uplink frame counter
  std::uint64_t stream_offset = 0;  ///< frame start, baseband samples
  float snr_db = 0.0f;           ///< per-sample SNR of this reception
  float cfo_bins = 0.0f;         ///< carrier-offset estimate (fingerprint)
  float timing_samples = 0.0f;   ///< timing-offset estimate
  /// Cross-tier trace stamp (wire v2 extension): the gateway-side trace id
  /// of this reception, 0 when the frame was not traced. Carried so the
  /// netserver can merge multi-gateway copies onto one trace timeline.
  std::uint64_t trace_id = 0;
  /// Wall-clock unix microseconds when the gateway emitted the record
  /// (0 = unstamped). Paired with trace_id on the wire.
  std::uint64_t emitted_unix_us = 0;
  std::vector<std::uint8_t> payload;
};

/// FNV-1a 64-bit over an arbitrary byte range. Shared by the dedup key
/// and the backhaul ack protocol (acks echo the datagram's hash so the
/// gateway can match them without sequence numbers).
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t len);

/// FNV-1a 64-bit hash of the payload bytes — the content component of the
/// cross-gateway dedup key.
std::uint64_t payload_hash(const std::vector<std::uint8_t>& payload);

struct DeviceHeader {
  std::uint32_t dev_addr = 0;
  std::uint32_t fcnt = 0;
};

/// Parses the compact device header out of a payload (see file comment).
DeviceHeader parse_device_header(const std::vector<std::uint8_t>& payload);

/// Builds an UplinkFrame from a decoded payload plus reception metadata,
/// filling dev_addr/fcnt from the compact header.
UplinkFrame make_uplink(std::vector<std::uint8_t> payload, float snr_db,
                        float cfo_bins, float timing_samples,
                        std::uint32_t gateway_id, std::uint16_t channel,
                        std::uint8_t sf, std::uint64_t stream_offset);

// ------------------------------------------------------------ wire format
//
// Datagram: magic "CHOU", version u8, reserved u8, count u16; then `count`
// length-prefixed records. Record: u16 byte length of the body, then the
// body — gateway_id u32, channel u16, sf u8, flags u8, dev_addr u32,
// fcnt u32, stream_offset u64, snr f32, cfo f32, timing f32,
// payload_len u16, payload bytes. All integers and float bit patterns are
// little-endian. Unknown trailing body bytes are skipped (forward
// compatibility); a record shorter than the fixed body is an error.
//
// Version 2 adds an optional trace extension AFTER the payload bytes,
// announced by flags bit 0 (kWireFlagTrace): trace_id u64 + emit
// timestamp u64 (wall-clock unix microseconds at the gateway). Because v1
// readers skip unknown trailing body bytes, a v2 record parses cleanly
// under the v1 rules minus the extension — only the version byte gates
// acceptance, so v1-era decoders that check `version <= theirs` reject it
// while this decoder accepts both 1 and 2.

inline constexpr std::uint32_t kWireMagic = 0x554F4843;  // "CHOU" LE
inline constexpr std::uint8_t kWireVersion = 2;
/// Oldest record format this decoder still accepts.
inline constexpr std::uint8_t kWireMinVersion = 1;
/// flags bit 0: the record body ends with the 16-byte trace extension.
inline constexpr std::uint8_t kWireFlagTrace = 0x01;
/// Fixed body size of a record, before the payload bytes.
inline constexpr std::size_t kRecordFixedBytes = 38;
/// Size of the optional post-payload trace extension (trace_id u64 +
/// emit unix-µs u64).
inline constexpr std::size_t kTraceExtensionBytes = 16;
/// Safe datagram budget (stays under typical loopback/ethernet MTUs after
/// fragmentation is avoided for the common frame sizes).
inline constexpr std::size_t kMaxDatagramBytes = 1400;

/// Appends one length-prefixed record for `f` to `out`.
void encode_uplink(const UplinkFrame& f, std::vector<std::uint8_t>& out);

/// Serializes frames [begin, end) of `frames` into one datagram.
std::vector<std::uint8_t> encode_datagram(
    const std::vector<UplinkFrame>& frames, std::size_t begin,
    std::size_t end);

/// Splits `frames` into datagrams no larger than `max_bytes` each (at
/// least one frame per datagram, so an oversized single frame still ships).
std::vector<std::vector<std::uint8_t>> encode_datagrams(
    const std::vector<UplinkFrame>& frames,
    std::size_t max_bytes = kMaxDatagramBytes);

/// Parses a datagram; appends decoded frames to `out`. Returns false (and
/// appends nothing) on bad magic/version or a structurally invalid record.
bool decode_datagram(const std::uint8_t* data, std::size_t len,
                     std::vector<UplinkFrame>& out);

}  // namespace choir::net
