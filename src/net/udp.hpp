// UDP transport for the uplink framing (src/net/uplink.hpp): how decoded
// frames travel from `choir_gateway --uplink-dest` to `choir_netserver`.
//
// Deliberately minimal, like the telemetry server: POSIX sockets, IPv4
// literals only (no resolver dependency), one receive thread. UDP fits the
// workload — each datagram is self-contained (magic + count + records), a
// lost datagram loses only the frames inside it, and LoRaWAN gateway
// backhauls (Semtech UDP packet forwarder) made the same call. The server
// binds loopback by default; set `bind_any` for a routable deployment.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "net/uplink.hpp"

namespace choir::net {

struct Endpoint {
  std::string host;  ///< IPv4 literal, e.g. "127.0.0.1"
  std::uint16_t port = 0;
};

/// Parses "host:port" (host an IPv4 literal). Returns false on bad input.
bool parse_endpoint(const std::string& s, Endpoint& out);

/// Fire-and-forget uplink batch sender (the gateway side).
class UdpUplinkSender {
 public:
  /// Opens a connected UDP socket to host:port. Throws std::runtime_error
  /// on a bad address or socket failure.
  UdpUplinkSender(const std::string& host, std::uint16_t port);
  ~UdpUplinkSender();

  UdpUplinkSender(const UdpUplinkSender&) = delete;
  UdpUplinkSender& operator=(const UdpUplinkSender&) = delete;

  /// Encodes and sends `frames` as one or more datagrams.
  void send(const std::vector<UplinkFrame>& frames);

  std::uint64_t datagrams_sent() const {
    return datagrams_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::atomic<std::uint64_t> datagrams_{0};
};

/// Receive loop feeding a NetServer (the network-server side).
class UdpIngestServer {
 public:
  /// Binds UDP `port` (0 picks an ephemeral port) and starts the receive
  /// thread; every decoded frame goes to server.ingest(). Throws
  /// std::runtime_error if the bind fails.
  UdpIngestServer(NetServer& server, std::uint16_t port,
                  bool bind_any = false);
  ~UdpIngestServer();

  UdpIngestServer(const UdpIngestServer&) = delete;
  UdpIngestServer& operator=(const UdpIngestServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t datagrams_received() const {
    return datagrams_.load(std::memory_order_relaxed);
  }
  std::uint64_t decode_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Stops the receive thread and closes the socket. Idempotent.
  void stop();

 private:
  void serve();

  NetServer& server_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> datagrams_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::thread thread_;
};

}  // namespace choir::net
