// UDP transport for the uplink framing (src/net/uplink.hpp): how decoded
// frames travel from `choir_gateway --uplink-dest` to `choir_netserver`.
//
// Deliberately minimal, like the telemetry server: POSIX sockets, IPv4
// literals only (no resolver dependency), one receive thread. UDP fits the
// workload — each datagram is self-contained (magic + count + records), a
// lost datagram loses only the frames inside it, and LoRaWAN gateway
// backhauls (Semtech UDP packet forwarder) made the same call. The server
// binds loopback by default; set `bind_any` for a routable deployment.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "net/server.hpp"
#include "net/uplink.hpp"

namespace choir::net {

struct Endpoint {
  std::string host;  ///< IPv4 literal, e.g. "127.0.0.1"
  std::uint16_t port = 0;
};

/// Parses "host:port" (host an IPv4 literal). Returns false on bad input.
bool parse_endpoint(const std::string& s, Endpoint& out);

// ------------------------------------------------------------- uplink acks
//
// When enabled, the ingest server answers every uplink datagram with a
// fixed-size CHOA ack echoing the datagram's FNV-1a hash. The gateway's
// failover sender matches acks to outstanding datagrams by that hash —
// no sequence numbers on the uplink path, so the fire-and-forget sender
// stays wire-compatible. `status` doubles as the failover signal: a
// standby that has not been promoted answers kAckNotActive, telling the
// gateway to try the other destination without waiting for a timeout.

inline constexpr std::uint32_t kAckMagic = 0x414F4843;  // "CHOA" LE
inline constexpr std::uint8_t kAckVersion = 1;
inline constexpr std::size_t kAckBytes = 24;
inline constexpr std::uint8_t kAckActive = 1;
inline constexpr std::uint8_t kAckNotActive = 2;

struct UplinkAck {
  std::uint8_t status = kAckActive;  ///< kAckActive / kAckNotActive
  std::uint64_t epoch = 0;           ///< responder's HA epoch (0 = non-HA)
  std::uint64_t datagram_hash = 0;   ///< fnv1a64 of the acked datagram
};

/// Encodes `a` into the fixed 24-byte wire form.
std::string encode_ack(const UplinkAck& a);
/// Decodes an ack datagram. Returns false on bad magic/version/size.
bool decode_ack(const std::uint8_t* data, std::size_t len, UplinkAck& out);

/// The responder side of the ack protocol: called per datagram to learn
/// this server's current role. Returning {kAckNotActive, epoch} makes
/// gateways fail over immediately.
using AckRoleFn = std::function<std::pair<std::uint8_t, std::uint64_t>()>;

/// Fire-and-forget uplink batch sender (the gateway side).
class UdpUplinkSender {
 public:
  /// Opens a connected UDP socket to host:port. Throws std::runtime_error
  /// on a bad address or socket failure.
  UdpUplinkSender(const std::string& host, std::uint16_t port);
  ~UdpUplinkSender();

  UdpUplinkSender(const UdpUplinkSender&) = delete;
  UdpUplinkSender& operator=(const UdpUplinkSender&) = delete;

  /// Encodes and sends `frames` as one or more datagrams.
  void send(const std::vector<UplinkFrame>& frames);

  std::uint64_t datagrams_sent() const {
    return datagrams_.load(std::memory_order_relaxed);
  }

 private:
  int fd_ = -1;
  std::atomic<std::uint64_t> datagrams_{0};
};

struct UdpIngestOptions {
  bool bind_any = false;
  /// Requested SO_RCVBUF. Uplink bursts from many gateways land between
  /// two scheduler quanta of the receive thread; an explicitly sized
  /// buffer keeps the kernel from silently shrinking that headroom to
  /// the distro default. The kernel may clamp to rmem_max; the actual
  /// size is exported as the `net.udp.rcvbuf_bytes` gauge.
  int rcvbuf_bytes = 4 * 1024 * 1024;
  /// Answer every datagram with a CHOA ack (see above).
  bool send_acks = false;
  /// Role source for acks; default answers {kAckActive, 0}.
  AckRoleFn ack_role;
};

/// Receive loop feeding a NetServer (the network-server side).
class UdpIngestServer {
 public:
  /// Binds UDP `port` (0 picks an ephemeral port) and starts the receive
  /// thread; every decoded frame goes to server.ingest(). Throws
  /// std::runtime_error if the bind fails.
  UdpIngestServer(NetServer& server, std::uint16_t port,
                  UdpIngestOptions opts);
  UdpIngestServer(NetServer& server, std::uint16_t port,
                  bool bind_any = false)
      : UdpIngestServer(server, port, UdpIngestOptions{bind_any}) {}
  ~UdpIngestServer();

  UdpIngestServer(const UdpIngestServer&) = delete;
  UdpIngestServer& operator=(const UdpIngestServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::uint64_t datagrams_received() const {
    return datagrams_.load(std::memory_order_relaxed);
  }
  std::uint64_t decode_errors() const {
    return errors_.load(std::memory_order_relaxed);
  }
  /// Datagrams the kernel dropped because the socket buffer was full
  /// (SO_RXQ_OVFL; stays 0 where the platform lacks it). Also exported
  /// as the `net.udp.rcvbuf_dropped` counter so silent UDP loss cannot
  /// masquerade as gateway loss in replication-lag readings.
  std::uint64_t rcvbuf_dropped() const {
    return rcvbuf_dropped_.load(std::memory_order_relaxed);
  }
  /// Actual SO_RCVBUF the kernel granted (after clamping/doubling).
  int rcvbuf_bytes() const { return rcvbuf_actual_; }

  /// Stops the receive thread and closes the socket. Idempotent.
  void stop();

 private:
  void serve();

  NetServer& server_;
  UdpIngestOptions opts_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  int rcvbuf_actual_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> datagrams_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> rcvbuf_dropped_{0};
  std::thread thread_;
};

}  // namespace choir::net
