// Crash-point fault injection for the persistence layer.
//
// A crash point is a named boundary inside a disk-mutating operation —
// before a journal write, between the two halves of a snapshot tmp write,
// after a manifest rename. Tests *arm* a point; when execution reaches the
// armed occurrence, `CrashInjected` is thrown. The persistence layer
// treats the throw as process death: it marks itself crashed *before*
// rethrowing, so no destructor, flush or retry touches the disk again —
// whatever bytes were durable at the throw are exactly the bytes a real
// SIGKILL would have left behind. The crash/restore matrix test
// (tests/test_persist.cpp) walks every registered point and proves
// recovery is correct from each one.
//
// Like CHOIR_OBS, the hook compiles out of production builds: configure
// with -DCHOIR_FAULTS=OFF and CHOIR_CRASH_POINT() expands to nothing —
// no string, no call, no lock. The helper functions below remain defined
// (tests check kFaultsEnabled and skip), they just never fire.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace choir::net::persist {

#if defined(CHOIR_FAULTS_DISABLED)
inline constexpr bool kFaultsEnabled = false;
#else
inline constexpr bool kFaultsEnabled = true;
#endif

/// Thrown by an armed crash point. Catching it means "the process died
/// here": abandon the server instance and recover from disk.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(const std::string& point)
      : std::runtime_error("crash injected at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

/// Arms crash point `name`: its `nth` execution after this call (1-based)
/// throws CrashInjected. Only one point is armed at a time; re-arming
/// replaces the previous armament and restarts its occurrence count.
void arm_crash_point(const std::string& name, std::uint64_t nth = 1);

/// Disarms everything and clears the hit log.
void disarm_crash_points();

/// (name, times hit) for every crash point executed since the last
/// disarm — the matrix test's dry-run enumeration.
std::vector<std::pair<std::string, std::uint64_t>> crash_point_log();

/// The macro target: logs the hit and throws if this is the armed
/// occurrence. Call through CHOIR_CRASH_POINT so it compiles out.
void hit_crash_point(const char* name);

}  // namespace choir::net::persist

#if defined(CHOIR_FAULTS_DISABLED)
#define CHOIR_CRASH_POINT(name) \
  do {                          \
  } while (0)
#else
#define CHOIR_CRASH_POINT(name) ::choir::net::persist::hit_crash_point(name)
#endif
