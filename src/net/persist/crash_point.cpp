#include "net/persist/crash_point.hpp"

#include <map>
#include <mutex>

namespace choir::net::persist {

namespace {

struct CrashState {
  std::mutex mu;
  std::string armed;          // empty = disarmed
  std::uint64_t armed_nth = 0;
  std::uint64_t armed_hits = 0;  // executions of `armed` since arming
  std::map<std::string, std::uint64_t> log;
};

CrashState& state() {
  static CrashState s;
  return s;
}

}  // namespace

void arm_crash_point(const std::string& name, std::uint64_t nth) {
  CrashState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed = name;
  s.armed_nth = nth == 0 ? 1 : nth;
  s.armed_hits = 0;
}

void disarm_crash_points() {
  CrashState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed.clear();
  s.armed_nth = 0;
  s.armed_hits = 0;
  s.log.clear();
}

std::vector<std::pair<std::string, std::uint64_t>> crash_point_log() {
  CrashState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  return {s.log.begin(), s.log.end()};
}

void hit_crash_point(const char* name) {
  CrashState& s = state();
  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    ++s.log[name];
    if (!s.armed.empty() && s.armed == name && ++s.armed_hits == s.armed_nth) {
      fire = true;
      s.armed.clear();  // one shot: the "process" is dead after this
    }
  }
  if (fire) throw CrashInjected(name);
}

}  // namespace choir::net::persist
