#include "net/persist/persistence.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "net/persist/crash_point.hpp"
#include "net/persist/format.hpp"
#include "obs/obs.hpp"
#include "util/atomic_write.hpp"

namespace fs = std::filesystem;

namespace choir::net::persist {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("persist: " + what + ": " +
                           std::strerror(errno));
}

/// write(2) the whole buffer, retrying short writes and EINTR.
void write_all(int fd, const char* data, std::size_t len,
               const std::string& what) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write " + what);
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string read_small_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

ManifestInfo read_manifest(const std::string& dir) {
  ManifestInfo m;
  const std::string manifest = read_small_file(dir + "/MANIFEST");
  std::istringstream ss(manifest);
  std::string tag;
  std::uint64_t gen = 0;
  if (!(ss >> tag >> gen) || tag != "gen") return m;
  m.present = true;
  m.generation = gen;
  std::string etag;
  std::uint64_t epoch = 0;
  if ((ss >> etag >> epoch) && etag == "epoch") m.epoch = epoch;
  return m;
}

Persistence::Persistence(const PersistOptions& opt, std::size_t n_shards)
    : opt_(opt), n_shards_(n_shards) {
  if (opt_.dir.empty())
    throw std::runtime_error("persist: empty state directory");
  if (opt_.flush_every_records == 0) opt_.flush_every_records = 1;
  std::error_code ec;
  fs::create_directories(opt_.dir, ec);
  if (ec)
    throw std::runtime_error("persist: cannot create state dir " + opt_.dir +
                             ": " + ec.message());
  writers_.reserve(n_shards_);
  for (std::size_t i = 0; i < n_shards_; ++i)
    writers_.push_back(std::make_unique<ShardWriter>());
}

Persistence::~Persistence() {
  if (crashed_) return;  // a crashed instance must not touch disk again
  try {
    close_writers(/*flush=*/true);
  } catch (...) {
    // Destructor: swallow flush failures; the journal simply ends at the
    // last successful write, which recovery handles by design.
  }
}

std::string Persistence::snapshot_path(std::uint64_t gen) const {
  return opt_.dir + "/snapshot-" + std::to_string(gen) + ".bin";
}

std::string Persistence::journal_path(std::uint64_t gen,
                                      std::size_t shard) const {
  return opt_.dir + "/journal-" + std::to_string(gen) + "-" +
         std::to_string(shard) + ".log";
}

std::string Persistence::manifest_path() const {
  return opt_.dir + "/MANIFEST";
}

bool Persistence::recover(SnapshotImage& image,
                          std::vector<std::vector<JournalRecord>>& shard_records,
                          RecoveryStats& st) {
  st = RecoveryStats{};
  shard_records.assign(n_shards_, {});

  // MANIFEST is one line: "gen <g>\n", or "gen <g> epoch <e>\n" once an
  // HA lease holder has written it. Absent or unparsable means no
  // generation was ever committed — fresh start (atomic_write guarantees
  // it is never half-written).
  const ManifestInfo m = read_manifest(opt_.dir);
  if (!m.present) return false;
  const std::uint64_t gen = m.generation;
  st.epoch = m.epoch;

  const std::string snap_bytes = read_small_file(snapshot_path(gen));
  if (snap_bytes.empty())
    throw std::runtime_error(
        "persist: MANIFEST names generation " + std::to_string(gen) +
        " but " + snapshot_path(gen) +
        " is missing or empty; refusing to start with reopened replay "
        "windows (remove the state dir to discard the instance)");
  image = decode_snapshot(snap_bytes);  // throws on damage

  for (std::size_t sh = 0; sh < n_shards_; ++sh) {
    JournalScan scan =
        load_journal(journal_path(gen, sh), static_cast<std::uint8_t>(sh));
    st.journal_records += scan.records.size();
    st.journal_bytes += scan.bytes;
    st.skipped_unknown += scan.skipped_unknown;
    if (scan.damaged) ++st.damaged_journals;
    shard_records[sh] = std::move(scan.records);
  }

  generation_ = gen;
  st.restored = true;
  st.generation = gen;
  st.snapshot_sessions = 0;
  for (const auto& shard : image.shards) st.snapshot_sessions += shard.size();
  return true;
}

void Persistence::begin_generation(const SnapshotImage& image) {
  if (crashed_)
    throw std::runtime_error("persist: instance already crashed");

  // Epoch fence: if the MANIFEST on disk carries a higher epoch than our
  // lease, another instance was promoted while we were out to lunch. We
  // must not commit a generation on top of its state — mark ourselves
  // dead *before* throwing so no destructor/flush touches the disk.
  {
    const ManifestInfo m = read_manifest(opt_.dir);
    if (m.present && m.epoch > opt_.epoch) {
      crashed_ = true;
      close_writers(/*flush=*/false);
      throw FencedError(opt_.epoch, m.epoch);
    }
  }

  // 1. Seal the outgoing generation's journals: flush buffers and close,
  //    so the files we are about to supersede are as complete as they
  //    will ever be. (Crash after this: old generation still live, fully
  //    intact — recovery replays it.)
  close_writers(/*flush=*/true);

  const std::uint64_t next = generation_ + 1;

  // 2. Stage the snapshot. util::atomic_write's temp+rename means a
  //    crash mid-write leaves at most a stray .tmp file that no MANIFEST
  //    references. The hook forwards each stage to a named crash point.
  try {
    CHOIR_CRASH_POINT("checkpoint.snapshot.before");
    util::atomic_write(
        snapshot_path(next), encode_snapshot(image),
        [](util::AtomicWriteStage st) {
          switch (st) {
            case util::AtomicWriteStage::kBeforeTmpWrite:
              CHOIR_CRASH_POINT("checkpoint.snapshot.tmp_open");
              break;
            case util::AtomicWriteStage::kMidTmpWrite:
              CHOIR_CRASH_POINT("checkpoint.snapshot.tmp_torn");
              break;
            case util::AtomicWriteStage::kBeforeRename:
              CHOIR_CRASH_POINT("checkpoint.snapshot.before_rename");
              break;
            case util::AtomicWriteStage::kAfterRename:
              CHOIR_CRASH_POINT("checkpoint.snapshot.after_rename");
              break;
          }
        });

    // 3. Open the new generation's journals (empty, header only).
    //    Crash here: snapshot-<next> exists but MANIFEST still names the
    //    old generation, so it is dead weight that the next successful
    //    checkpoint deletes.
    CHOIR_CRASH_POINT("checkpoint.journal.before_open");
    open_generation_journals(next);
    CHOIR_CRASH_POINT("checkpoint.journal.after_open");

    // 4. THE commit point: atomically repoint MANIFEST. The epoch suffix
    //    only appears in HA mode so non-HA directories stay byte-for-byte
    //    what PR 7 wrote.
    CHOIR_CRASH_POINT("checkpoint.manifest.before");
    std::string manifest = "gen " + std::to_string(next);
    if (opt_.epoch > 0) manifest += " epoch " + std::to_string(opt_.epoch);
    manifest += "\n";
    util::atomic_write(manifest_path(), manifest);
    CHOIR_CRASH_POINT("checkpoint.manifest.after");

    generation_ = next;

    // 5. Garbage-collect superseded generations. Crash mid-delete is
    //    harmless: MANIFEST already names the new generation and
    //    recovery never looks at the leftovers.
    CHOIR_CRASH_POINT("checkpoint.cleanup.before_delete");
    delete_stale_generations(next);
  } catch (const CrashInjected&) {
    crashed_ = true;  // freeze: disk now looks exactly like a SIGKILL
    close_writers(/*flush=*/false);
    throw;
  }
}

void Persistence::open_generation_journals(std::uint64_t gen) {
  for (std::size_t sh = 0; sh < n_shards_; ++sh) {
    ShardWriter& w = *writers_[sh];
    std::lock_guard<std::mutex> lk(w.mu);
    const std::string path = journal_path(gen, sh);
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) fail("open " + path);
    std::string header = journal_header(static_cast<std::uint8_t>(sh));
    if (opt_.epoch > 0) {
      // HA mode: brand the generation with its owning epoch as the first
      // record. Old readers skip it (unknown type, valid CRC); the tail
      // follower and statedump surface it.
      JournalRecord er;
      er.type = RecordType::kEpoch;
      er.epoch = opt_.epoch;
      encode_record(er, header);
    }
    try {
      write_all(fd, header.data(), header.size(), path);
    } catch (...) {
      ::close(fd);
      throw;
    }
    w.fd = fd;
    w.buffer.clear();
    w.buffered_records = 0;
  }
}

void Persistence::append(std::size_t shard, const JournalRecord& r) {
  if (crashed_) return;  // dead instance: silently drop (post-kill)
  ShardWriter& w = *writers_[shard];
  std::lock_guard<std::mutex> lk(w.mu);
  if (w.fd < 0) return;  // no generation open yet (recovery in progress)
  const std::size_t framed_at = w.buffer.size();
  encode_record(r, w.buffer);
  ++w.buffered_records;
  if (record_sink_)
    record_sink_(shard, w.buffer.substr(framed_at));
  // Unconfirmed tail: records buffered in user space that a kill right now
  // would lose (non-zero only under group commit, flush_every_records > 1).
  CHOIR_OBS_GAUGE_MAX("net.persist.unconfirmed_tail.high_water",
                      static_cast<std::int64_t>(w.buffered_records));
  if (w.buffered_records >= opt_.flush_every_records) {
    flush_locked(w);
  } else {
    CHOIR_OBS_GAUGE_SET("net.persist.unconfirmed_tail",
                        static_cast<std::int64_t>(w.buffered_records));
  }
}

void Persistence::flush_locked(ShardWriter& w) {
  if (w.buffer.empty()) {
    w.buffered_records = 0;
    return;
  }
  const auto flush_t0 = std::chrono::steady_clock::now();
  try {
    CHOIR_CRASH_POINT("journal.flush.before_write");
    if (w.buffer.size() > 1) {
      // Two-part write so a crash point can model a torn record: the
      // kernel may persist any prefix of a buffered write on real kills.
      const std::size_t half = w.buffer.size() / 2;
      write_all(w.fd, w.buffer.data(), half, "journal");
      CHOIR_CRASH_POINT("journal.flush.mid_write");
      write_all(w.fd, w.buffer.data() + half, w.buffer.size() - half,
                "journal");
    } else {
      write_all(w.fd, w.buffer.data(), w.buffer.size(), "journal");
    }
    CHOIR_CRASH_POINT("journal.flush.after_write");
  } catch (const CrashInjected&) {
    crashed_ = true;
    throw;
  }
  w.records += w.buffered_records;
  w.bytes += w.buffer.size();
  CHOIR_OBS_COUNT("net.persist.journal.bytes", w.buffer.size());
  CHOIR_OBS_COUNT("net.persist.journal.flushes", 1);
  const double flush_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - flush_t0)
          .count();
  CHOIR_OBS_HIST("net.persist.flush_us", flush_us);
  CHOIR_OBS_GAUGE_SET("net.persist.unconfirmed_tail", 0);
  w.buffer.clear();
  w.buffered_records = 0;
}

void Persistence::flush_all() {
  if (crashed_) return;
  for (auto& wp : writers_) {
    ShardWriter& w = *wp;
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.fd >= 0) flush_locked(w);
  }
}

void Persistence::close_writers(bool flush) {
  for (auto& wp : writers_) {
    ShardWriter& w = *wp;
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.fd < 0) continue;
    if (flush) flush_locked(w);
    ::close(w.fd);  // close(2) does not flush user buffers — ours are gone
    w.fd = -1;
    w.buffer.clear();
    w.buffered_records = 0;
  }
}

void Persistence::simulate_kill() {
  crashed_ = true;
  for (auto& wp : writers_) {
    ShardWriter& w = *wp;
    std::lock_guard<std::mutex> lk(w.mu);
    if (w.fd >= 0) ::close(w.fd);
    w.fd = -1;
    w.buffer.clear();  // buffered-but-unwritten records die with the process
    w.buffered_records = 0;
  }
}

void Persistence::delete_stale_generations(std::uint64_t keep) {
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(opt_.dir, ec)) {
    const std::string name = ent.path().filename().string();
    std::uint64_t gen = 0;
    if (name.rfind("snapshot-", 0) == 0)
      gen = std::strtoull(name.c_str() + 9, nullptr, 10);
    else if (name.rfind("journal-", 0) == 0)
      gen = std::strtoull(name.c_str() + 8, nullptr, 10);
    else
      continue;
    if (gen == keep) continue;
    std::error_code rm_ec;
    fs::remove(ent.path(), rm_ec);  // best-effort GC
  }
}

std::uint64_t Persistence::journal_records_written() const {
  std::uint64_t n = 0;
  for (const auto& wp : writers_) {
    std::lock_guard<std::mutex> lk(wp->mu);
    n += wp->records;
  }
  return n;
}

std::uint64_t Persistence::journal_bytes_written() const {
  std::uint64_t n = 0;
  for (const auto& wp : writers_) {
    std::lock_guard<std::mutex> lk(wp->mu);
    n += wp->bytes;
  }
  return n;
}

}  // namespace choir::net::persist
