// Versioned binary snapshot of the network server's durable state: the
// sharded device registry (sessions in provisioning order, so FIFO
// eviction replays identically), the ingest counters, and the team
// manager's roster version + stable assignments.
//
// Layout (all little-endian; docs/PERSISTENCE.md has the field tables):
//
//   magic "CHSS" u32 | version u16 | flags u16
//   counters: 7 x u64 (uplinks, accepted, dedup_dropped, dedup_upgraded,
//             replay_rejected, unknown_device, malformed)
//   evicted u64
//   team: version u64 | n_assign u64 | { dev u32, assignment i32 } ...
//   registry: shard_bits u32 | per shard: n u32 | session records
//   crc32 u32 over everything above
//
// A snapshot is only ever written through util::atomic_write, so on disk
// it is either absent or complete; the trailing CRC turns silent media
// corruption into a clean load error instead of a poisoned registry.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/registry.hpp"
#include "net/server_stats.hpp"

namespace choir::net::persist {

inline constexpr std::uint32_t kSnapshotMagic = 0x53534843;  // "CHSS" LE
inline constexpr std::uint16_t kSnapshotVersion = 1;

/// In-memory image of a snapshot: what checkpoint() serializes and
/// recovery deserializes before applying it to a live NetServer.
struct SnapshotImage {
  NetServerStats counters{};
  std::uint64_t evicted = 0;
  std::uint64_t team_version = 0;
  /// TeamManager's stable-assignment map (dev -> team key / -1 / -2).
  std::vector<std::pair<std::uint32_t, std::int32_t>> assignments;
  std::uint32_t shard_bits = 0;
  /// Per shard, sessions in provisioning order.
  std::vector<std::vector<DeviceSession>> shards;
};

/// Serializes `img` (including the trailing CRC).
std::string encode_snapshot(const SnapshotImage& img);

/// Parses a snapshot. Throws std::runtime_error on any structural
/// damage: bad magic/version, truncation, or CRC mismatch.
SnapshotImage decode_snapshot(const std::string& bytes);

}  // namespace choir::net::persist
