#include "net/persist/journal.hpp"

#include <fstream>
#include <sstream>

#include "net/persist/format.hpp"

namespace choir::net::persist {

namespace {

/// Reception metadata shared by kAccept and kReject bodies.
void put_frame(std::string& body, const UplinkFrame& f) {
  put_u32(body, f.dev_addr);
  put_u32(body, f.fcnt);
  put_u32(body, f.gateway_id);
  put_u16(body, f.channel);
  put_u8(body, f.sf);
  put_u8(body, 0);  // flags, reserved
  put_u64(body, f.stream_offset);
  put_f32(body, f.snr_db);
  put_f32(body, f.cfo_bins);
  put_f32(body, f.timing_samples);
}

UplinkFrame get_frame(Cursor& c) {
  UplinkFrame f;
  f.dev_addr = c.u32();
  f.fcnt = c.u32();
  f.gateway_id = c.u32();
  f.channel = c.u16();
  f.sf = c.u8();
  c.u8();  // flags
  f.stream_offset = c.u64();
  f.snr_db = c.f32();
  f.cfo_bins = c.f32();
  f.timing_samples = c.f32();
  return f;
}

}  // namespace

void encode_record(const JournalRecord& r, std::string& out) {
  std::string body;
  put_u8(body, static_cast<std::uint8_t>(r.type));
  switch (r.type) {
    case RecordType::kProvision:
      put_u32(body, r.dev_addr);
      put_f64(body, r.x_m);
      put_f64(body, r.y_m);
      break;
    case RecordType::kAccept:
      put_frame(body, r.frame);
      break;
    case RecordType::kReject:
      put_u8(body, static_cast<std::uint8_t>(r.reject_kind));
      put_u8(body, r.upgraded ? 1 : 0);
      put_frame(body, r.frame);
      break;
    case RecordType::kAdrApplied:
      put_u32(body, r.dev_addr);
      break;
    case RecordType::kRoster:
      put_u64(body, r.roster_version);
      break;
    case RecordType::kEpoch:
      put_u64(body, r.epoch);
      break;
  }
  put_u16(out, static_cast<std::uint16_t>(body.size()));
  out += body;
  put_u32(out, crc32(body));
}

std::string journal_header(std::uint8_t shard) {
  std::string h;
  put_u32(h, kJournalMagic);
  put_u8(h, kJournalVersion);
  put_u8(h, shard);
  put_u16(h, 0);
  return h;
}

RecordParse parse_one_record(const std::uint8_t* data, std::size_t len,
                             std::size_t& consumed, JournalRecord& out) {
  consumed = 0;
  if (len < 2) return RecordParse::kNeedMore;
  const std::uint16_t rec_len =
      static_cast<std::uint16_t>(data[0] | (data[1] << 8));
  if (rec_len == 0 || rec_len > kMaxRecordBytes) return RecordParse::kDamaged;
  const std::size_t framed = 2u + rec_len + 4u;
  if (len < framed) return RecordParse::kNeedMore;
  const std::uint8_t* body = data + 2;
  const std::size_t crc_at = 2u + rec_len;
  const std::uint32_t stored_crc =
      static_cast<std::uint32_t>(data[crc_at]) |
      (static_cast<std::uint32_t>(data[crc_at + 1]) << 8) |
      (static_cast<std::uint32_t>(data[crc_at + 2]) << 16) |
      (static_cast<std::uint32_t>(data[crc_at + 3]) << 24);
  if (crc32(body, rec_len) != stored_crc) return RecordParse::kDamaged;

  Cursor b{body, rec_len, 0, true};
  JournalRecord r;
  const std::uint8_t type = b.u8();
  bool known = true;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kProvision:
      r.type = RecordType::kProvision;
      r.dev_addr = b.u32();
      r.x_m = b.f64();
      r.y_m = b.f64();
      break;
    case RecordType::kAccept:
      r.type = RecordType::kAccept;
      r.frame = get_frame(b);
      break;
    case RecordType::kReject: {
      r.type = RecordType::kReject;
      const std::uint8_t kind = b.u8();
      if (kind < 1 || kind > 4) {
        known = false;
        break;
      }
      r.reject_kind = static_cast<RejectKind>(kind);
      r.upgraded = b.u8() != 0;
      r.frame = get_frame(b);
      break;
    }
    case RecordType::kAdrApplied:
      r.type = RecordType::kAdrApplied;
      r.dev_addr = b.u32();
      break;
    case RecordType::kRoster:
      r.type = RecordType::kRoster;
      r.roster_version = b.u64();
      break;
    case RecordType::kEpoch:
      r.type = RecordType::kEpoch;
      r.epoch = b.u64();
      break;
    default:
      known = false;  // future record type: CRC says intact, skip it
      break;
  }
  if (known && !b.ok) {
    // CRC passed but the body is shorter than the type demands — a
    // writer bug or a forged record; stop rather than apply garbage.
    return RecordParse::kDamaged;
  }
  consumed = framed;
  if (!known) return RecordParse::kUnknown;
  out = std::move(r);
  return RecordParse::kRecord;
}

JournalScan scan_journal(const std::uint8_t* data, std::size_t len,
                         std::uint8_t expect_shard) {
  JournalScan out;
  Cursor c{data, len, 0, true};
  if (c.u32() != kJournalMagic || c.u8() != kJournalVersion ||
      c.u8() != expect_shard || (c.u16(), !c.ok)) {
    out.damaged = len != 0;  // an empty file is a clean empty journal
    return out;
  }
  out.bytes = kJournalHeaderBytes;

  std::size_t pos = kJournalHeaderBytes;
  for (;;) {
    if (pos == len) break;  // clean end
    std::size_t consumed = 0;
    JournalRecord r;
    const RecordParse st = parse_one_record(data + pos, len - pos, consumed, r);
    if (st == RecordParse::kRecord) {
      out.records.push_back(std::move(r));
    } else if (st == RecordParse::kUnknown) {
      ++out.skipped_unknown;
    } else {
      // In a batch scan a mid-record end of buffer IS damage: nothing is
      // still appending, so the tail is torn.
      out.damaged = true;
      break;
    }
    pos += consumed;
    out.bytes += consumed;
  }
  return out;
}

JournalScan load_journal(const std::string& path, std::uint8_t expect_shard) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};  // missing file: clean empty journal
  std::ostringstream ss;
  ss << f.rdbuf();
  const std::string bytes = ss.str();
  return scan_journal(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                      bytes.size(), expect_shard);
}

}  // namespace choir::net::persist
