// Write-ahead journal of control-plane mutations.
//
// One journal file per registry shard, so concurrent ingest threads
// contend only on their shard's writer and per-device record order is the
// shard's true mutation order. Each file:
//
//   header:  magic "CHOJ" u32 | version u8 | shard u8 | reserved u16
//   records: { len u16 | type u8 | body | crc32 u32 } ...
//
// `len` counts type+body; the CRC covers type+body. Records are
// append-only and self-delimiting: a reader needs no index, can tail a
// growing file (the future hot-standby path), and recovers any prefix of
// a valid journal to the last intact record — a torn tail, a truncation
// or a flipped bit stops the scan exactly at the damage. A record whose
// type is unknown but whose CRC verifies is *skipped*, not fatal, so old
// readers survive new record types.
//
// Record types (bodies in docs/PERSISTENCE.md):
//   kProvision  device provisioned / repositioned
//   kAccept     uplink accepted by the FCnt window (full reception
//               metadata: replaying it through DeviceRegistry::accept
//               reproduces the session bit for bit)
//   kReject     uplink counted but not accepted (dedup / replay /
//               unknown-device / malformed), with the reception metadata
//               so best-SNR dedup upgrades replay too
//   kAdrApplied ADR change commanded (SNR history cleared)
//   kRoster     team roster rebuilt to a new version
//   kEpoch      HA lease epoch that owned the generation when it opened
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/uplink.hpp"

namespace choir::net::persist {

inline constexpr std::uint32_t kJournalMagic = 0x4A4F4843;  // "CHOJ" LE
inline constexpr std::uint8_t kJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderBytes = 8;
/// Sanity cap on one record's len field; anything larger is damage.
inline constexpr std::size_t kMaxRecordBytes = 256;

enum class RecordType : std::uint8_t {
  kProvision = 1,
  kAccept = 2,
  kReject = 3,
  kAdrApplied = 4,
  kRoster = 5,
  kEpoch = 6,
};

/// Why an uplink was rejected (kReject body).
enum class RejectKind : std::uint8_t {
  kDedup = 1,
  kReplay = 2,
  kUnknownDevice = 3,
  kMalformed = 4,
};

/// One decoded journal record. `frame` is populated for kAccept/kReject
/// (payload left empty — the registry never stores payload bytes).
struct JournalRecord {
  RecordType type = RecordType::kAccept;
  // kProvision
  std::uint32_t dev_addr = 0;
  double x_m = 0.0, y_m = 0.0;
  // kAccept / kReject
  UplinkFrame frame;
  // kReject
  RejectKind reject_kind = RejectKind::kDedup;
  bool upgraded = false;  ///< dedup rejects that won on SNR
  // kRoster
  std::uint64_t roster_version = 0;
  // kEpoch
  std::uint64_t epoch = 0;
};

/// Appends the framed encoding of `r` (len|type|body|crc) to `out`.
void encode_record(const JournalRecord& r, std::string& out);

/// File header for shard `shard`.
std::string journal_header(std::uint8_t shard);

/// Outcome of parsing one framed record from a byte range.
enum class RecordParse : std::uint8_t {
  kRecord,   ///< a known record was decoded into `out`
  kUnknown,  ///< CRC-intact record of an unknown type: skip it
  kNeedMore, ///< the buffer ends mid-record — not damage when tailing a
             ///< file that is still being appended to
  kDamaged,  ///< CRC mismatch, zero/oversized len, or short body
};

/// Parses the record framed at `data[0..len)`. On kRecord/kUnknown,
/// `consumed` is the framed size (len field + body + crc); on kNeedMore
/// or kDamaged it is 0. This is the single frame decoder shared by the
/// batch scanner below and the hot-standby tail reader (src/net/ha/):
/// the distinction between kNeedMore and kDamaged is what lets a tailer
/// wait out a concurrent append instead of declaring the journal torn.
RecordParse parse_one_record(const std::uint8_t* data, std::size_t len,
                             std::size_t& consumed, JournalRecord& out);

/// Outcome of scanning one journal file's bytes.
struct JournalScan {
  std::vector<JournalRecord> records;
  std::uint64_t bytes = 0;            ///< bytes consumed as intact records
  std::uint64_t skipped_unknown = 0;  ///< intact records of unknown type
  /// True when the scan stopped before the end of the buffer: torn tail,
  /// truncated record, CRC mismatch, or a bad/missing header.
  bool damaged = false;
};

/// Decodes `len` bytes of a journal file (header + records). Never
/// throws; damage stops the scan at the last intact record.
JournalScan scan_journal(const std::uint8_t* data, std::size_t len,
                         std::uint8_t expect_shard);

/// Loads and scans a journal file. A missing file is an empty, undamaged
/// scan (a crash between snapshot commit and journal creation leaves
/// exactly that).
JournalScan load_journal(const std::string& path, std::uint8_t expect_shard);

}  // namespace choir::net::persist
