// Storage engine for the durable control plane: generations, manifest,
// snapshot files and per-shard write-ahead journals under one state
// directory.
//
//   <dir>/MANIFEST                the commit point: names the live
//                                 generation g (written atomically)
//   <dir>/snapshot-<g>.bin        registry+counters+teams at gen start
//   <dir>/journal-<g>-<s>.log     shard s's mutations after the snapshot
//
// Checkpoint protocol (begin_generation): flush old journals -> write
// snapshot-<g+1> via util::atomic_write -> create empty journal-<g+1>-*
// files -> atomically rewrite MANIFEST (the commit) -> delete stale
// generations. A crash at *any* boundary leaves the directory naming a
// complete, consistent generation: before the manifest rename the old
// generation is still live and intact, after it the new one is. Every
// boundary carries a CHOIR_CRASH_POINT so the fault-injection matrix can
// prove that sentence rather than assert it.
//
// Durability: a journal append is buffered per shard and written to the
// OS at every `flush_every_records` records. Once write(2) returns, the
// record survives SIGKILL (page cache outlives the process). The default
// of 1 makes each accept durable before NetServer confirms it to the
// callback — exactly-once across a crash; raising it trades a bounded
// tail-loss window for fewer syscalls (group commit), like Redis AOF
// everysec. fsync is deliberately not issued (power loss is out of
// scope; see docs/PERSISTENCE.md).
//
// This class is storage only: NetServer owns *applying* recovered state
// and deciding what to journal. Thread safety: appends lock only their
// shard's writer; begin_generation must run quiesced (NetServer's
// persist gate guarantees it).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/persist/journal.hpp"
#include "net/persist/snapshot.hpp"

namespace choir::net::persist {

struct PersistOptions {
  /// State directory (created if missing). Empty = persistence disabled.
  std::string dir;
  /// Journal records buffered per shard before a write(2). 1 = every
  /// record durable before the ingest returns (strict exactly-once);
  /// larger values group-commit with a bounded tail-loss window.
  std::size_t flush_every_records = 1;
  /// HA lease epoch this writer owns (0 = non-HA, single-writer mode).
  /// Stamped into MANIFEST ("gen <g> epoch <e>") and, when non-zero, as
  /// the first journal record of each generation. A checkpoint that finds
  /// a *higher* epoch on disk throws FencedError instead of committing:
  /// a deposed active that wakes up cannot overwrite the generation a
  /// promoted standby now owns.
  std::uint64_t epoch = 0;
};

/// Thrown by begin_generation when the on-disk MANIFEST carries a higher
/// epoch than this writer's lease: another instance was promoted while
/// we were paused/partitioned. The instance marks itself crashed first,
/// so nothing touches the disk afterwards.
class FencedError : public std::runtime_error {
 public:
  FencedError(std::uint64_t ours, std::uint64_t on_disk)
      : std::runtime_error(
            "persist: fenced out (our epoch " + std::to_string(ours) +
            " < on-disk epoch " + std::to_string(on_disk) + ")"),
        our_epoch(ours),
        disk_epoch(on_disk) {}
  std::uint64_t our_epoch;
  std::uint64_t disk_epoch;
};

/// Parsed MANIFEST: "gen <g>\n" (pre-HA) or "gen <g> epoch <e>\n".
/// The old reader (`ss >> tag >> gen`) still accepts the new form, and
/// this parser treats a missing epoch as 0 — both directions compatible.
struct ManifestInfo {
  bool present = false;
  std::uint64_t generation = 0;
  std::uint64_t epoch = 0;
};

/// Reads and parses `<dir>/MANIFEST`. Never throws; an absent or
/// unparsable file is `present == false`.
ManifestInfo read_manifest(const std::string& dir);

/// What recovery found on disk. Exposed by NetServer::recovery() and
/// mirrored into net.persist.recovery.* counters.
struct RecoveryStats {
  bool restored = false;           ///< a previous generation was loaded
  std::uint64_t generation = 0;    ///< generation recovered from
  std::uint64_t snapshot_sessions = 0;
  std::uint64_t journal_records = 0;   ///< intact records scanned
  std::uint64_t journal_bytes = 0;
  std::uint64_t replayed = 0;      ///< records applied to the registry
  std::uint64_t discarded = 0;     ///< stale/no-op records skipped on apply
  std::uint64_t skipped_unknown = 0;
  std::uint64_t damaged_journals = 0;  ///< journals cut short by damage
  std::uint64_t epoch = 0;             ///< MANIFEST epoch (0 pre-HA)
};

class Persistence {
 public:
  /// Opens (creating if needed) the state directory. Does not read
  /// anything yet — call recover() before the first append.
  Persistence(const PersistOptions& opt, std::size_t n_shards);
  ~Persistence();

  Persistence(const Persistence&) = delete;
  Persistence& operator=(const Persistence&) = delete;

  /// Reads MANIFEST + snapshot + journals of the live generation.
  /// Returns false when the directory holds no committed generation
  /// (fresh start). Throws std::runtime_error when a committed
  /// generation's snapshot is unreadable (we will not silently reopen
  /// replay windows). Populates `st` either way.
  bool recover(SnapshotImage& image,
               std::vector<std::vector<JournalRecord>>& shard_records,
               RecoveryStats& st);

  /// Starts generation current+1 from `image` (the checkpoint protocol
  /// above). Caller must be quiesced. Also the first call after
  /// construction/recovery: it seals any damaged journal tails into a
  /// fresh, clean generation. Throws FencedError when the on-disk
  /// MANIFEST carries a higher epoch than ours (see PersistOptions).
  void begin_generation(const SnapshotImage& image);

  /// Adopts `gen` as the current generation *without* reading anything —
  /// the hot-standby promotion path: the standby already holds the
  /// generation's state in memory (it has been tailing the journals), so
  /// the next begin_generation seals gen+1 on top of it instead of
  /// paying a full disk recovery. Only valid before any append.
  void adopt_generation(std::uint64_t gen) { generation_ = gen; }

  /// Installs a hook invoked for every journal record append with the
  /// exact framed bytes written to disk (called under the shard writer's
  /// lock, before the flush decision). The HA replication sender uses it
  /// to stream the journal to a network standby. Set before ingest
  /// starts; pass nullptr to clear.
  void set_record_sink(
      std::function<void(std::size_t shard, const std::string& framed)> sink) {
    record_sink_ = std::move(sink);
  }

  // Journal appends (thread-safe; routed to `shard`'s writer, which for
  // device-keyed records must be the registry's shard index so per-device
  // order is preserved).
  void append(std::size_t shard, const JournalRecord& r);

  /// Flushes every shard's buffered records to the OS.
  void flush_all();

  /// SIGKILL-equivalent: drop every buffered byte, close descriptors,
  /// refuse all further writes. The disk keeps exactly what a kill at
  /// this instant would have left. Used by the kill/restore harnesses.
  void simulate_kill();

  /// True once a CrashInjected fired (or simulate_kill ran); the
  /// instance is permanently read-only-dead.
  bool crashed() const { return crashed_; }

  std::uint64_t generation() const { return generation_; }
  std::uint64_t epoch() const { return opt_.epoch; }
  std::uint64_t journal_records_written() const;
  std::uint64_t journal_bytes_written() const;

  const PersistOptions& options() const { return opt_; }

 private:
  struct ShardWriter {
    std::mutex mu;
    int fd = -1;
    std::string buffer;
    std::size_t buffered_records = 0;
    std::uint64_t records = 0;  ///< written (flushed) records
    std::uint64_t bytes = 0;    ///< written (flushed) bytes
  };

  std::string snapshot_path(std::uint64_t gen) const;
  std::string journal_path(std::uint64_t gen, std::size_t shard) const;
  std::string manifest_path() const;
  /// Flush one writer's buffer (caller holds its mutex). Crash points
  /// inside; marks crashed_ and rethrows on injection.
  void flush_locked(ShardWriter& w);
  void open_generation_journals(std::uint64_t gen);
  void close_writers(bool flush);
  void delete_stale_generations(std::uint64_t keep);

  PersistOptions opt_;
  std::size_t n_shards_;
  std::uint64_t generation_ = 0;
  bool crashed_ = false;
  std::vector<std::unique_ptr<ShardWriter>> writers_;
  std::function<void(std::size_t, const std::string&)> record_sink_;
};

}  // namespace choir::net::persist
