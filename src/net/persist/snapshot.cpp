#include "net/persist/snapshot.hpp"

#include <stdexcept>

#include "net/persist/format.hpp"

namespace choir::net::persist {

namespace {

[[noreturn]] void corrupt(const char* what) {
  throw std::runtime_error(std::string("snapshot: ") + what);
}

void put_session(std::string& out, const DeviceSession& s) {
  put_u32(out, s.dev_addr);
  put_f64(out, s.x_m);
  put_f64(out, s.y_m);
  put_u8(out, s.seen ? 1 : 0);
  put_u8(out, s.snr_count);
  put_u8(out, s.snr_head);
  put_u8(out, 0);  // reserved
  put_u32(out, s.last_fcnt);
  put_u64(out, s.uplinks);
  put_u64(out, s.replays);
  put_u32(out, s.last_gateway);
  put_u16(out, s.last_channel);
  put_u16(out, 0);  // reserved
  put_f64(out, s.last_snr_db);
  put_f64(out, s.last_timing_samples);
  put_f64(out, s.cfo_fingerprint_bins);
  for (float v : s.snr_hist) put_f32(out, v);
}

DeviceSession get_session(Cursor& c) {
  DeviceSession s;
  s.dev_addr = c.u32();
  s.x_m = c.f64();
  s.y_m = c.f64();
  s.seen = c.u8() != 0;
  s.snr_count = c.u8();
  s.snr_head = c.u8();
  c.u8();
  s.last_fcnt = c.u32();
  s.uplinks = c.u64();
  s.replays = c.u64();
  s.last_gateway = c.u32();
  s.last_channel = c.u16();
  c.u16();
  s.last_snr_db = c.f64();
  s.last_timing_samples = c.f64();
  s.cfo_fingerprint_bins = c.f64();
  for (std::size_t i = 0; i < kSnrHistory; ++i) s.snr_hist[i] = c.f32();
  if (s.snr_count > kSnrHistory || s.snr_head >= kSnrHistory)
    corrupt("session SNR ring out of range");
  return s;
}

}  // namespace

std::string encode_snapshot(const SnapshotImage& img) {
  std::string out;
  put_u32(out, kSnapshotMagic);
  put_u16(out, kSnapshotVersion);
  put_u16(out, 0);  // flags

  put_u64(out, img.counters.uplinks);
  put_u64(out, img.counters.accepted);
  put_u64(out, img.counters.dedup_dropped);
  put_u64(out, img.counters.dedup_upgraded);
  put_u64(out, img.counters.replay_rejected);
  put_u64(out, img.counters.unknown_device);
  put_u64(out, img.counters.malformed);
  put_u64(out, img.evicted);

  put_u64(out, img.team_version);
  put_u64(out, img.assignments.size());
  for (const auto& [dev, a] : img.assignments) {
    put_u32(out, dev);
    put_u32(out, static_cast<std::uint32_t>(a));
  }

  put_u32(out, img.shard_bits);
  for (const auto& shard : img.shards) {
    put_u32(out, static_cast<std::uint32_t>(shard.size()));
    for (const DeviceSession& s : shard) put_session(out, s);
  }

  put_u32(out, crc32(out));
  return out;
}

SnapshotImage decode_snapshot(const std::string& bytes) {
  if (bytes.size() < 4 + 4) corrupt("too short");
  const std::string_view body(bytes.data(), bytes.size() - 4);
  Cursor tail{reinterpret_cast<const std::uint8_t*>(bytes.data()),
              bytes.size(), bytes.size() - 4, true};
  if (crc32(reinterpret_cast<const std::uint8_t*>(body.data()),
            body.size()) != tail.u32())
    corrupt("CRC mismatch");

  Cursor c{reinterpret_cast<const std::uint8_t*>(body.data()), body.size(),
           0, true};
  if (c.u32() != kSnapshotMagic) corrupt("bad magic");
  if (c.u16() != kSnapshotVersion) corrupt("unsupported version");
  c.u16();  // flags

  SnapshotImage img;
  img.counters.uplinks = c.u64();
  img.counters.accepted = c.u64();
  img.counters.dedup_dropped = c.u64();
  img.counters.dedup_upgraded = c.u64();
  img.counters.replay_rejected = c.u64();
  img.counters.unknown_device = c.u64();
  img.counters.malformed = c.u64();
  img.evicted = c.u64();

  img.team_version = c.u64();
  const std::uint64_t n_assign = c.u64();
  if (!c.ok || n_assign > (body.size() / 8))
    corrupt("assignment count out of range");
  img.assignments.reserve(n_assign);
  for (std::uint64_t i = 0; i < n_assign; ++i) {
    const std::uint32_t dev = c.u32();
    const std::int32_t a = static_cast<std::int32_t>(c.u32());
    img.assignments.emplace_back(dev, a);
  }

  img.shard_bits = c.u32();
  if (!c.ok || img.shard_bits > 12) corrupt("shard_bits out of range");
  const std::size_t n_shards = std::size_t{1} << img.shard_bits;
  img.shards.resize(n_shards);
  for (std::size_t sh = 0; sh < n_shards; ++sh) {
    const std::uint32_t n = c.u32();
    if (!c.ok || n > body.size()) corrupt("session count out of range");
    img.shards[sh].reserve(n);
    for (std::uint32_t i = 0; i < n; ++i)
      img.shards[sh].push_back(get_session(c));
    if (!c.ok) corrupt("truncated shard");
  }
  if (!c.ok || c.pos != body.size()) corrupt("trailing or missing bytes");
  return img;
}

}  // namespace choir::net::persist
