// Binary on-disk format shared by the write-ahead journal and the
// registry snapshot (docs/PERSISTENCE.md has the byte-level spec).
//
// Everything is little-endian, written through the explicit put/get
// helpers below — identical in spirit to the CHOU uplink wire format
// (src/net/uplink.cpp), so the two tiers stay stylistically one system.
// Float and double fields are serialized as raw IEEE bit patterns:
// restore must reproduce session state *bit for bit* (the citysim
// kill-restore harness diffs CFO EWMAs and SNR histories exactly).
#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace choir::net::persist {

// ------------------------------------------------------------- LE helpers

inline void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>(v >> 8));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
inline void put_f32(std::string& out, float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32(out, bits);
}
inline void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64(out, bits);
}

/// Bounds-checked cursor over a byte buffer. Reads past the end set
/// `ok = false` and return zeros; callers check once at a record
/// boundary instead of per field, so corrupt input can never read out of
/// bounds (the journal fuzz tests run this under ASan).
struct Cursor {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || size - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return data[pos++];
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(data[pos]) |
                      static_cast<std::uint16_t>(data[pos + 1]) << 8;
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(data[pos + static_cast<std::size_t>(i)])
           << (8 * i);
    pos += 8;
    return v;
  }
  float f32() {
    const std::uint32_t bits = u32();
    float v;
    std::memcpy(&v, &bits, 4);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, 8);
    return v;
  }
};

/// CRC-32 (IEEE 802.3, reflected, the zlib polynomial) over `data`.
/// Frames every journal record and seals the snapshot, so random bit
/// flips are detected rather than silently applied to session state.
std::uint32_t crc32(const std::uint8_t* data, std::size_t len);
inline std::uint32_t crc32(const std::string& s) {
  return crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

}  // namespace choir::net::persist
