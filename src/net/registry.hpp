// Sharded device registry: per-device session state for every sensor the
// network server knows about.
//
// The registry is the concurrency backbone of the ingest path: devices are
// hashed onto a power-of-two number of shards, each shard owning its own
// mutex and session map, so N ingest threads proceed in parallel unless
// they land on the same shard. Session state per device:
//
//   * frame-counter window with replay rejection — an uplink is accepted
//     iff its FCnt is strictly newer than the last accepted one and within
//     `max_fcnt_gap` (the LoRaWAN MAX_FCNT_GAP rule);
//   * last-seen reception metadata (gateway, channel, SNR, timing) and an
//     EWMA CFO fingerprint from the collision decoder's per-user offsets —
//     a soft identity check and the ADR engine's input;
//   * a bounded SNR history ring feeding ADR (src/net/adr.hpp) and team
//     planning (src/net/team_manager.hpp);
//   * an optional position, used for proximity-constrained Choir teams.
//
// Per-shard occupancy is exported as `net.registry.shard<k>.devices`
// gauges plus a `net.registry.devices` total.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/uplink.hpp"
#include "obs/obs.hpp"

namespace choir::net {

/// SNR samples retained per device for ADR and team planning.
inline constexpr std::size_t kSnrHistory = 16;

struct RegistryOptions {
  /// log2 of the shard count (power-of-two shards, per-shard mutex).
  std::size_t shard_bits = 4;
  /// Accept uplinks from devices that were never provisioned, creating
  /// their session on first contact.
  bool auto_provision = true;
  /// Largest forward FCnt jump accepted (LoRaWAN MAX_FCNT_GAP flavor);
  /// larger jumps are treated as desync and rejected as replays.
  std::uint32_t max_fcnt_gap = 16384;
  /// EWMA weight of the newest CFO observation in the fingerprint.
  double cfo_alpha = 0.25;
  /// Hard cap on resident device sessions across all shards (0 =
  /// unbounded). Auto-provisioning beyond the cap evicts the
  /// oldest-provisioned session in the full shard (FIFO), so a city-scale
  /// run with more devices than budgeted memory degrades to a rolling
  /// window instead of growing without bound. Evictions reset the victim's
  /// FCnt replay window (it re-provisions on next contact) and are counted
  /// in `net.registry.evicted` so they are never silent.
  std::size_t max_devices = 0;
};

struct DeviceSession {
  std::uint32_t dev_addr = 0;
  double x_m = 0.0, y_m = 0.0;  ///< position (0,0 if unsurveyed)
  bool seen = false;            ///< at least one uplink accepted
  std::uint32_t last_fcnt = 0;
  std::uint64_t uplinks = 0;    ///< accepted uplinks
  std::uint64_t replays = 0;    ///< rejected receptions
  std::uint32_t last_gateway = 0;
  std::uint16_t last_channel = 0;
  double last_snr_db = 0.0;
  double last_timing_samples = 0.0;
  /// EWMA of the decoder's per-user CFO estimates — drifts slowly with the
  /// crystal, so a sudden jump flags a misattributed (or spoofed) frame.
  double cfo_fingerprint_bins = 0.0;

  std::array<float, kSnrHistory> snr_hist{};
  std::uint8_t snr_count = 0;
  std::uint8_t snr_head = 0;

  void push_snr(float snr_db);
  double mean_snr_db() const;
  double max_snr_db() const;
};

enum class FcntCheck {
  kAccepted,       ///< new FCnt, session updated
  kReplay,         ///< stale / duplicate / desynced FCnt
  kUnknownDevice,  ///< not provisioned and auto_provision off
};

/// Per-call shard-lock timing, filled when a caller passes it to accept():
/// how long the ingest thread queued on the shard mutex vs. how long it
/// held it. Requested per-frame (traced frames only) so the untraced hot
/// path never pays the extra clock reads.
struct RegistryTiming {
  std::size_t shard = 0;
  double lock_acquired_us = 0.0;  ///< trace-epoch time the lock was taken
  double lock_wait_us = 0.0;
  double lock_hold_us = 0.0;
};

class DeviceRegistry {
 public:
  explicit DeviceRegistry(const RegistryOptions& opt = {});

  DeviceRegistry(const DeviceRegistry&) = delete;
  DeviceRegistry& operator=(const DeviceRegistry&) = delete;

  /// Creates (or repositions) a device session ahead of traffic.
  void provision(std::uint32_t dev_addr, double x_m = 0.0, double y_m = 0.0);

  /// Validates `f` against the device's frame-counter window and, when
  /// accepted, folds the reception metadata into the session. A non-null
  /// `timing` additionally measures the shard-lock wait/hold split (and
  /// records it into the net.registry.lock_{wait,hold}_us histograms).
  FcntCheck accept(const UplinkFrame& f, RegistryTiming* timing = nullptr);

  /// Re-attributes the retained copy of the device's newest frame to a
  /// better reception: called when cross-gateway dedup sees a higher-SNR
  /// copy of the frame that `accept` already admitted. Updates last-seen
  /// gateway/channel/SNR (and the newest SNR history slot) iff the session
  /// still points at `f.fcnt`.
  void note_better_copy(const UplinkFrame& f);

  /// Drops the device's SNR history ring (counters and last-seen metadata
  /// stay). Called when an ADR change is applied: samples received at the
  /// old transmit power are not comparable with what comes next.
  void clear_snr_history(std::uint32_t dev_addr);

  /// Copy of the device's session, if it exists.
  std::optional<DeviceSession> lookup(std::uint32_t dev_addr) const;

  /// Calls `fn` on every session, shard by shard (each shard locked while
  /// its sessions are visited).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& sh : shards_) {
      std::lock_guard<std::mutex> lock(sh->mu);
      for (const auto& [addr, s] : sh->sessions) fn(s);
    }
  }

  std::size_t device_count() const;
  std::size_t n_shards() const { return shards_.size(); }
  std::vector<std::size_t> shard_occupancy() const;

  /// Shard a device hashes to — the persistence tier keys its per-shard
  /// write-ahead journals on this so per-device record order is total.
  std::size_t shard_index(std::uint32_t dev_addr) const {
    return mix(dev_addr) & (shards_.size() - 1);
  }

  /// Sessions of shard `i` in provisioning order (the FIFO eviction
  /// order) when max_devices caps the registry, map order otherwise.
  /// Snapshot serialization: restore_shard() of this exact sequence
  /// reproduces the shard bit-for-bit, including future eviction order.
  std::vector<DeviceSession> dump_shard(std::size_t i) const;

  /// Replaces shard `i` with `sessions` (in provisioning order). Throws
  /// std::invalid_argument if any session hashes to a different shard —
  /// that means the snapshot was written with different shard_bits.
  void restore_shard(std::size_t i, const std::vector<DeviceSession>& sessions);

  /// Restores the lifetime eviction counter after a snapshot load so
  /// `net.registry.evicted` keeps counting from where the dead process
  /// left off.
  void restore_evicted(std::uint64_t n);
  /// Sessions evicted by the max_devices cap since construction.
  std::uint64_t evicted() const { return evicted_.load(std::memory_order_relaxed); }

  const RegistryOptions& options() const { return opt_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::uint32_t, DeviceSession> sessions;
    /// Provisioning order, oldest first — the eviction queue when
    /// max_devices caps the shard. Only maintained when the cap is set.
    std::deque<std::uint32_t> order;
  };

  /// Multiplicative hash spreads sequential dev_addrs across shards.
  static std::uint32_t mix(std::uint32_t x) {
    x ^= x >> 16;
    x *= 0x7feb352dU;
    x ^= x >> 15;
    x *= 0x846ca68bU;
    x ^= x >> 16;
    return x;
  }
  Shard& shard_for(std::uint32_t dev_addr) const {
    return *shards_[mix(dev_addr) & (shards_.size() - 1)];
  }
  /// Inserts a session if absent; returns it. Caller holds the shard lock.
  DeviceSession& get_or_create(Shard& sh, std::size_t shard_idx,
                               std::uint32_t dev_addr);
  /// The FCnt-window classification body. Caller holds the shard lock.
  FcntCheck accept_locked(Shard& sh, std::size_t idx, const UplinkFrame& f);
  void update_occupancy(std::size_t shard_idx, std::size_t n);

  RegistryOptions opt_;
  std::size_t shard_cap_ = 0;  ///< per-shard session cap (0 = unbounded)
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> evicted_{0};
  std::vector<obs::Gauge*> shard_gauges_;  ///< empty when obs compiled out
  obs::Gauge* total_gauge_ = nullptr;
  obs::Counter* evicted_counter_ = nullptr;
};

}  // namespace choir::net
