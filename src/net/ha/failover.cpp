#include "net/ha/failover.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "obs/obs.hpp"

namespace choir::net::ha {

namespace {

int connect_udp(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("failover sender: bad IPv4 address " + ep.host);
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("failover sender: socket() failed");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw std::runtime_error("failover sender: connect() failed");
  }
  return fd;
}

}  // namespace

FailoverUplinkSender::FailoverUplinkSender(const Endpoint& primary,
                                           const Endpoint& secondary,
                                           FailoverOptions opts)
    : opts_(opts) {
  fds_[0] = connect_udp(primary);
  fds_[1] = connect_udp(secondary);
}

FailoverUplinkSender::~FailoverUplinkSender() {
  for (int fd : fds_)
    if (fd >= 0) ::close(fd);
}

FailoverUplinkSender::Report FailoverUplinkSender::send_reliable(
    const std::vector<UplinkFrame>& frames) {
  Report rep;
  rep.final_dest = current_;
  if (frames.empty()) return rep;

  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> unacked;
  for (auto& dgram : encode_datagrams(frames)) {
    const std::uint64_t h = fnv1a64(dgram.data(), dgram.size());
    unacked.emplace(h, std::move(dgram));
  }
  rep.datagrams = unacked.size();

  for (int round = 0; round < opts_.max_rounds && !unacked.empty(); ++round) {
    // Transmit every outstanding datagram to the current destination —
    // and mirror to the other one inside the dual-send window, when the
    // promotion race makes "current" a guess. Dedup absorbs the copies.
    for (const auto& [h, dgram] : unacked) {
      (void)::send(fds_[current_], dgram.data(), dgram.size(), MSG_NOSIGNAL);
      ++rep.sends;
      if (dual_rounds_left_ > 0) {
        (void)::send(fds_[1 - current_], dgram.data(), dgram.size(),
                     MSG_NOSIGNAL);
        ++rep.sends;
      }
    }
    if (dual_rounds_left_ > 0) --dual_rounds_left_;

    // Collect acks from both sockets until the round budget expires.
    bool current_acked = false;
    bool must_switch = false;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts_.ack_timeout_s));
    while (!unacked.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const int timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      pollfd pfds[2] = {{fds_[0], POLLIN, 0}, {fds_[1], POLLIN, 0}};
      const int pr = ::poll(pfds, 2, timeout_ms > 0 ? timeout_ms : 1);
      if (pr <= 0) continue;
      for (int i = 0; i < 2; ++i) {
        if (!(pfds[i].revents & POLLIN)) continue;
        std::uint8_t buf[64];
        const ssize_t n = ::recv(fds_[i], buf, sizeof(buf), 0);
        if (n <= 0) continue;
        UplinkAck ack;
        if (!decode_ack(buf, static_cast<std::size_t>(n), ack)) continue;
        rep.peer_epoch = ack.epoch;
        if (ack.status == kAckNotActive) {
          // The destination answered "I am a standby": if that is our
          // current choice, flip immediately rather than waiting out a
          // timeout. Its ack confirms receipt of nothing — keep the
          // datagram outstanding for the active.
          if (i == current_) must_switch = true;
          continue;
        }
        if (i == current_) current_acked = true;
        const auto it = unacked.find(ack.datagram_hash);
        if (it != unacked.end()) {
          unacked.erase(it);
          ++rep.acked;
          // Late acks for dual-sent datagrams may arrive from the other
          // destination; they count — the frame reached an active server.
        }
      }
    }

    if (!unacked.empty() && (must_switch || !current_acked)) {
      // The current destination is dead or deposed: fail over, with a
      // dual-send window so a half-promoted pair still hears us.
      current_ = 1 - current_;
      dual_rounds_left_ = opts_.dual_send_rounds;
      rep.switched = true;
      ++switches_;
      CHOIR_OBS_COUNT("gateway.failover.switches", 1);
    }
  }

  rep.final_dest = current_;
  CHOIR_OBS_COUNT("gateway.failover.batches", 1);
  if (rep.acked < rep.datagrams)
    CHOIR_OBS_COUNT("gateway.failover.unacked_datagrams",
                    rep.datagrams - rep.acked);
  return rep;
}

}  // namespace choir::net::ha
