// Epoch-numbered lease over a persistence state directory: the mutual
// exclusion primitive that makes hot-standby failover safe.
//
// At most one process may *write* a state directory at a time. The lease
// is a file in that directory:
//
//   <dir>/LEASE-<epoch>   "epoch <e> owner <o> renewed_unix_us <t> ttl_us <t>\n"
//
// Acquisition creates LEASE-<e_max+1> with O_CREAT|O_EXCL — the one
// filesystem operation that is atomic *and* fails when the name exists,
// so two contenders racing for the same epoch cannot both win. (A plain
// atomic rename is NOT a lock: rename happily overwrites.) Renewal
// rewrites the holder's own file via util::atomic_write — no contention,
// since no other process ever creates that epoch's name. A holder is
// deposed the instant a higher-numbered lease file appears (fenced());
// the epoch also flows into PersistOptions::epoch, so even a paused
// holder that never observes its deposition is stopped by the MANIFEST
// epoch fence at its next checkpoint.
//
// Expiry uses wall-clock time (renewed + ttl < now). That is the usual
// lease caveat — clocks must agree to ~ttl — acceptable here because
// both processes share a machine (local follower) or a deployment with
// NTP. The fencing epoch, not the clock, is what protects the data.
#pragma once

#include <cstdint>
#include <string>

namespace choir::net::ha {

/// Parsed view of the highest-numbered lease file in a directory.
struct LeaseInfo {
  bool present = false;
  std::uint64_t epoch = 0;
  std::string owner;
  std::uint64_t renewed_unix_us = 0;
  std::uint64_t ttl_us = 0;
  bool expired(std::uint64_t now_unix_us) const {
    return now_unix_us > renewed_unix_us + ttl_us;
  }
};

/// Scans `dir` for LEASE-* files and parses the highest epoch. Never
/// throws; absent/unparsable => present == false.
LeaseInfo read_lease(const std::string& dir);

/// Wall-clock microseconds since the unix epoch.
std::uint64_t unix_now_us();

class Lease {
 public:
  /// Does not touch the directory; call try_acquire() to contend.
  Lease(std::string dir, std::string owner, double ttl_s);

  /// Attempts to take the lease: succeeds when no lease exists, the
  /// current one has expired, or we already hold the highest epoch.
  /// Taking over an expired lease bumps the epoch (e_max + 1). Returns
  /// false when an unexpired lease is held by someone else or we lost
  /// the O_EXCL race; callers retry on their own schedule.
  bool try_acquire();

  /// Rewrites our lease file with a fresh renewed_unix_us. Call from a
  /// heartbeat at ~ttl/3. No-op unless held.
  void renew();

  /// True when a lease file with a higher epoch than ours exists — we
  /// have been deposed and must stop writing immediately.
  bool fenced() const;

  /// Deletes our lease file (graceful handover). No-op unless held.
  void release();

  bool held() const { return epoch_ != 0; }
  std::uint64_t epoch() const { return epoch_; }
  const std::string& owner() const { return owner_; }

 private:
  std::string lease_path(std::uint64_t epoch) const;
  std::string render(std::uint64_t renewed_us) const;

  std::string dir_;
  std::string owner_;
  std::uint64_t ttl_us_;
  std::uint64_t epoch_ = 0;  ///< 0 = not held
};

}  // namespace choir::net::ha
