#include "net/ha/lease.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/atomic_write.hpp"

namespace fs = std::filesystem;

namespace choir::net::ha {

namespace {

bool parse_lease_file(const std::string& path, LeaseInfo& out) {
  std::ifstream f(path);
  if (!f) return false;
  std::string tag_epoch, tag_owner, tag_renewed, tag_ttl;
  LeaseInfo li;
  if (!(f >> tag_epoch >> li.epoch >> tag_owner >> li.owner >> tag_renewed >>
        li.renewed_unix_us >> tag_ttl >> li.ttl_us))
    return false;
  if (tag_epoch != "epoch" || tag_owner != "owner" ||
      tag_renewed != "renewed_unix_us" || tag_ttl != "ttl_us")
    return false;
  li.present = true;
  out = li;
  return true;
}

}  // namespace

std::uint64_t unix_now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

LeaseInfo read_lease(const std::string& dir) {
  LeaseInfo best;
  std::error_code ec;
  for (const auto& ent : fs::directory_iterator(dir, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("LEASE-", 0) != 0) continue;
    const std::uint64_t epoch = std::strtoull(name.c_str() + 6, nullptr, 10);
    if (epoch <= best.epoch) continue;
    LeaseInfo li;
    if (parse_lease_file(ent.path().string(), li) && li.epoch == epoch)
      best = li;
  }
  return best;
}

Lease::Lease(std::string dir, std::string owner, double ttl_s)
    : dir_(std::move(dir)),
      owner_(std::move(owner)),
      ttl_us_(static_cast<std::uint64_t>(ttl_s * 1e6)) {}

std::string Lease::lease_path(std::uint64_t epoch) const {
  return dir_ + "/LEASE-" + std::to_string(epoch);
}

std::string Lease::render(std::uint64_t renewed_us) const {
  return "epoch " + std::to_string(epoch_) + " owner " + owner_ +
         " renewed_unix_us " + std::to_string(renewed_us) + " ttl_us " +
         std::to_string(ttl_us_) + "\n";
}

bool Lease::try_acquire() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  const LeaseInfo cur = read_lease(dir_);
  if (cur.present) {
    if (cur.epoch == epoch_ && cur.owner == owner_) return true;  // ours
    if (!cur.expired(unix_now_us())) return false;  // held and alive
  }
  const std::uint64_t next = cur.epoch + 1;
  // O_EXCL: exactly one contender creates this epoch's file. A loser
  // re-scans on its next attempt and sees the fresh winner.
  const std::string path = lease_path(next);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) return false;
  epoch_ = next;
  const std::string body = render(unix_now_us());
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
  // GC superseded lease files (best-effort; their epochs are dead).
  for (const auto& ent : fs::directory_iterator(dir_, ec)) {
    const std::string name = ent.path().filename().string();
    if (name.rfind("LEASE-", 0) != 0) continue;
    const std::uint64_t e = std::strtoull(name.c_str() + 6, nullptr, 10);
    if (e < next) {
      std::error_code rm_ec;
      fs::remove(ent.path(), rm_ec);
    }
  }
  return true;
}

void Lease::renew() {
  if (!held()) return;
  // atomic_write is safe here: only the holder ever writes this epoch's
  // name, so the rename can never clobber a contender's acquisition.
  util::atomic_write(lease_path(epoch_), render(unix_now_us()));
}

bool Lease::fenced() const {
  if (!held()) return true;
  const LeaseInfo cur = read_lease(dir_);
  return cur.present && cur.epoch > epoch_;
}

void Lease::release() {
  if (!held()) return;
  std::error_code ec;
  fs::remove(lease_path(epoch_), ec);
  epoch_ = 0;
}

}  // namespace choir::net::ha
