// Incremental reader for a CHOJ journal that another process is still
// appending to — the local-filesystem replication path and the engine
// behind `choir_statedump --follow`.
//
// The journal's framing is self-delimiting, and appends make bytes
// appear strictly in order, so a tailer can distinguish "the writer has
// not finished this record yet" (the buffer ends mid-frame: wait) from
// "this record is torn" (a complete frame whose CRC fails: real damage).
// parse_one_record() encodes exactly that distinction; this class adds
// the file plumbing: open-when-created, pread from the last consumed
// offset, a partial-frame carry buffer, and lag accounting.
//
// The fd is held open across rotation: the active seals (flushes +
// closes) a generation's journals *before* committing the next one, so
// once the follower observes the new MANIFEST it can drain the old
// files to EOF through its fds even after they are unlinked.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/persist/journal.hpp"

namespace choir::net::ha {

class JournalTail {
 public:
  /// Does not open anything yet — the file may not exist until the
  /// active commits the generation. poll() retries the open.
  JournalTail(std::string path, std::uint8_t shard);
  ~JournalTail();

  JournalTail(const JournalTail&) = delete;
  JournalTail& operator=(const JournalTail&) = delete;

  /// Reads any newly appended bytes and appends every *complete* record
  /// to `out`. Returns false once the tail is permanently damaged (CRC
  /// mismatch / bad header) — a follower must re-bootstrap, never guess.
  bool poll(std::vector<persist::JournalRecord>& out);

  bool damaged() const { return damaged_; }
  bool opened() const { return fd_ >= 0; }
  /// Bytes fully consumed as intact records (header included).
  std::uint64_t bytes_consumed() const { return consumed_; }
  std::uint64_t records() const { return records_; }
  std::uint64_t skipped_unknown() const { return skipped_unknown_; }
  /// Bytes sitting in the file (or carry buffer) not yet surfaced as
  /// records — the per-shard replication lag, in bytes.
  std::uint64_t lag_bytes() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint8_t shard_;
  int fd_ = -1;
  bool header_ok_ = false;
  bool damaged_ = false;
  std::uint64_t read_offset_ = 0;  ///< next file offset to pread
  std::uint64_t consumed_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t skipped_unknown_ = 0;
  std::string carry_;  ///< bytes read but not yet parsed (partial frame)
};

}  // namespace choir::net::ha
