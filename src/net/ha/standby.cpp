#include "net/ha/standby.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/obs.hpp"

namespace choir::net::ha {

namespace {

std::string slurp_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return {};
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace

const char* ha_role_name(HaRole r) {
  switch (r) {
    case HaRole::kStandby:
      return "standby";
    case HaRole::kPromoting:
      return "promoting";
    case HaRole::kActive:
      return "active";
  }
  return "?";
}

StandbyServer::StandbyServer(StandbyOptions opts) : opts_(std::move(opts)) {
  if (!opts_.server.persist.dir.empty())
    throw std::runtime_error(
        "standby: server config must not carry a persist dir (persistence "
        "attaches at promotion)");
  server_ = std::make_unique<NetServer>(opts_.server);
  if (opts_.follow_dir.empty() && opts_.repl_enabled) {
    ReplReceiverOptions ro;
    ro.port = opts_.repl_listen;
    ro.bind_any = opts_.repl_bind_any;
    ro.debug_drop_records = opts_.repl_debug_drop_records;
    ReplicationReceiver::Callbacks cb;
    cb.on_snapshot = [this](const std::string& bytes,
                            const std::vector<std::uint64_t>& /*heads*/,
                            std::uint64_t generation, std::uint64_t epoch) {
      const persist::SnapshotImage image = persist::decode_snapshot(bytes);
      server_->restore_snapshot(image);
      generation_ = generation;
      manifest_epoch_ = epoch;
      bootstrapped_ = true;
      CHOIR_OBS_COUNT("ha.standby.bootstraps", 1);
    };
    cb.on_record = [this](const persist::JournalRecord& r) {
      server_->apply_replicated(r);
      ++applied_;
    };
    receiver_ = std::make_unique<ReplicationReceiver>(std::move(cb),
                                                      server_->registry()
                                                          .n_shards(),
                                                      ro);
  }
  CHOIR_OBS_GAUGE_SET("ha.role", 0);
}

StandbyServer::~StandbyServer() {
  if (receiver_) receiver_->stop();
}

std::uint64_t StandbyServer::followed_epoch() const {
  if (receiver_) {
    const std::uint64_t e = receiver_->sender_epoch();
    return e ? e : manifest_epoch_;
  }
  return manifest_epoch_;
}

void StandbyServer::open_tails(std::uint64_t gen) {
  tails_.clear();
  const std::size_t n = server_->registry().n_shards();
  for (std::size_t sh = 0; sh < n; ++sh) {
    tails_.push_back(std::make_unique<JournalTail>(
        opts_.follow_dir + "/journal-" + std::to_string(gen) + "-" +
            std::to_string(sh) + ".log",
        static_cast<std::uint8_t>(sh)));
  }
}

void StandbyServer::bootstrap_local() {
  const persist::ManifestInfo m = persist::read_manifest(opts_.follow_dir);
  if (!m.present) return;  // active has not committed yet: keep waiting
  const std::string snap_bytes =
      slurp_file(opts_.follow_dir + "/snapshot-" +
                 std::to_string(m.generation) + ".bin");
  if (snap_bytes.empty()) return;  // racing the checkpoint: retry
  persist::SnapshotImage image;
  try {
    image = persist::decode_snapshot(snap_bytes);
  } catch (const std::exception&) {
    return;  // half-visible rotation artifact: retry next poll
  }
  server_->restore_snapshot(image);
  generation_ = m.generation;
  manifest_epoch_ = m.epoch;
  open_tails(generation_);
  bootstrapped_ = true;
  CHOIR_OBS_COUNT("ha.standby.bootstraps", 1);
}

void StandbyServer::reset() {
  tails_.clear();
  bootstrapped_ = false;
  generation_ = 0;
  applied_ = 0;
  server_ = std::make_unique<NetServer>(opts_.server);
  ++rebootstraps_;
  CHOIR_OBS_COUNT("ha.standby.rebootstraps", 1);
}

std::uint64_t StandbyServer::drain_tails() {
  std::uint64_t applied = 0;
  std::vector<persist::JournalRecord> records;
  for (auto& tail : tails_) {
    records.clear();
    tail->poll(records);  // damage is inspected by the caller
    for (const auto& r : records) {
      server_->apply_replicated(r);
      ++applied;
    }
  }
  applied_ += applied;
  if (applied) CHOIR_OBS_COUNT("ha.standby.applied_records", applied);
  return applied;
}

bool StandbyServer::tail_damaged() const {
  for (const auto& tail : tails_)
    if (tail->damaged()) return true;
  return false;
}

void StandbyServer::poll() {
  if (opts_.follow_dir.empty()) {
    export_gauges();  // network mode: the receiver thread does the work
    return;
  }
  if (!bootstrapped_) {
    bootstrap_local();
    if (!bootstrapped_) return;
  }
  drain_tails();
  const persist::ManifestInfo m = persist::read_manifest(opts_.follow_dir);
  if (m.present && m.generation != generation_) {
    if (m.generation == generation_ + 1 && !tail_damaged()) {
      // Rotation: the active sealed these journals *before* committing
      // the new generation, so one final drain through our held fds
      // brings us to exactly the state the new snapshot encodes — no
      // need to read it.
      drain_tails();
      if (tail_damaged()) {
        reset();
        return;
      }
      open_tails(m.generation);
      generation_ = m.generation;
      manifest_epoch_ = m.epoch;
    } else {
      // Missed one or more whole generations (or damage): the files we
      // would need may already be GC'd — start over from the snapshot.
      reset();
      return;
    }
  }
  export_gauges();
}

StandbyLag StandbyServer::lag() const {
  StandbyLag l;
  l.applied = applied_;
  for (const auto& tail : tails_) l.bytes += tail->lag_bytes();
  if (receiver_) l.records = receiver_->lag_records();
  return l;
}

void StandbyServer::export_gauges() const {
  const StandbyLag l = lag();
  CHOIR_OBS_GAUGE_SET("ha.repl.lag_bytes", static_cast<std::int64_t>(l.bytes));
  CHOIR_OBS_GAUGE_SET("ha.repl.lag_records",
                      static_cast<std::int64_t>(l.records));
  CHOIR_OBS_GAUGE_SET("ha.epoch",
                      static_cast<std::int64_t>(followed_epoch()));
  for (std::size_t i = 0; i < tails_.size(); ++i) {
    CHOIR_OBS_GAUGE_SET(
        obs::labeled("ha.repl.lag_bytes", {{"shard", std::to_string(i)}}),
        static_cast<std::int64_t>(tails_[i]->lag_bytes()));
  }
}

void StandbyServer::promote(const persist::PersistOptions& opt) {
  role_.store(HaRole::kPromoting, std::memory_order_release);
  CHOIR_OBS_GAUGE_SET("ha.role", 1);

  if (!opts_.follow_dir.empty()) {
    // Converge on the final on-disk state. The writer is dead (or
    // deposed), but the follower may be mid-stream: behind by one
    // rotation (poll follows it) or by several (poll resets, and we must
    // re-bootstrap from the committed snapshot rather than promote an
    // empty replica). Iterate until a poll leaves us bootstrapped at the
    // committed generation, then read every tail to EOF. A torn record
    // stops a shard's replay exactly where disk recovery would.
    for (;;) {
      if (!bootstrapped_) bootstrap_local();
      if (!bootstrapped_) break;  // nothing committed on disk at all
      poll();
      if (bootstrapped_ &&
          persist::read_manifest(opts_.follow_dir).generation ==
              generation_) {
        while (drain_tails() > 0) {
        }
        break;
      }
    }
  } else if (receiver_) {
    // Fence the stream at the new epoch (a deposed active's stragglers
    // are dropped at the wire), then stop the apply thread for good.
    receiver_->set_min_epoch(opt.epoch);
    receiver_->stop();
  }

  server_->attach_persistence(opt, generation_);
  tails_.clear();
  manifest_epoch_ = opt.epoch;
  role_.store(HaRole::kActive, std::memory_order_release);
  CHOIR_OBS_GAUGE_SET("ha.role", 2);
  CHOIR_OBS_GAUGE_SET("ha.epoch", static_cast<std::int64_t>(opt.epoch));
  CHOIR_OBS_COUNT("ha.promotions", 1);
}

std::unique_ptr<NetServer> StandbyServer::take_server() {
  if (role() != HaRole::kActive)
    throw std::logic_error("standby: take_server() before promote()");
  return std::move(server_);
}

}  // namespace choir::net::ha
