#include "net/ha/tail.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

namespace choir::net::ha {

using persist::JournalRecord;
using persist::RecordParse;

JournalTail::JournalTail(std::string path, std::uint8_t shard)
    : path_(std::move(path)), shard_(shard) {}

JournalTail::~JournalTail() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t JournalTail::lag_bytes() const {
  if (fd_ < 0) return 0;
  struct stat st {};
  if (::fstat(fd_, &st) != 0) return carry_.size();
  const std::uint64_t size = static_cast<std::uint64_t>(st.st_size);
  return size > consumed_ ? size - consumed_ : carry_.size();
}

bool JournalTail::poll(std::vector<JournalRecord>& out) {
  if (damaged_) return false;
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_RDONLY);
    if (fd_ < 0) return true;  // not created yet: keep waiting
  }

  // Pull in everything appended since last time.
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::pread(fd_, buf, sizeof(buf),
                              static_cast<off_t>(read_offset_));
    if (n < 0) {
      if (errno == EINTR) continue;
      return true;  // transient read error: retry next poll
    }
    if (n == 0) break;
    carry_.append(buf, static_cast<std::size_t>(n));
    read_offset_ += static_cast<std::uint64_t>(n);
    if (static_cast<std::size_t>(n) < sizeof(buf)) break;
  }

  const auto* data = reinterpret_cast<const std::uint8_t*>(carry_.data());
  std::size_t pos = 0;

  if (!header_ok_) {
    if (carry_.size() < persist::kJournalHeaderBytes) return true;
    const bool ok =
        data[0] == 0x43 && data[1] == 0x48 && data[2] == 0x4F &&
        data[3] == 0x4A && data[4] == persist::kJournalVersion &&
        data[5] == shard_;
    if (!ok) {
      damaged_ = true;
      return false;
    }
    header_ok_ = true;
    pos = persist::kJournalHeaderBytes;
    consumed_ += persist::kJournalHeaderBytes;
  }

  while (pos < carry_.size()) {
    std::size_t framed = 0;
    JournalRecord r;
    const RecordParse st =
        persist::parse_one_record(data + pos, carry_.size() - pos, framed, r);
    if (st == RecordParse::kNeedMore) break;  // writer mid-append: wait
    if (st == RecordParse::kDamaged) {
      damaged_ = true;
      break;
    }
    if (st == RecordParse::kRecord) {
      out.push_back(std::move(r));
      ++records_;
    } else {
      ++skipped_unknown_;
    }
    pos += framed;
    consumed_ += framed;
  }
  carry_.erase(0, pos);
  return !damaged_;
}

}  // namespace choir::net::ha
