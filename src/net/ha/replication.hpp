// Network replication of the write-ahead journal: the CHOR protocol.
//
// The active netserver streams every journal record, in per-shard order,
// to a standby over the same UDP backhaul the gateways use. The unit of
// replication is the journal's own framed record encoding (len | type |
// body | crc32) — the bytes that hit the disk are the bytes that cross
// the wire, so the standby replays exactly what recovery would.
//
// Datagram layout (all little-endian), 16-byte common header:
//
//   magic "CHOR" u32 | version u8 | type u8 | reserved u16 | epoch u64
//
// followed by a type-specific body:
//
//   kRecords      shard u16 | first_seq u64 | count u16 | framed records
//   kAck          n_shards u16 | acked_seq u64 * n      (cumulative)
//   kNak          shard u16 | need_from_seq u64
//   kSnapshotReq  (empty)
//   kSnapshotMeta generation u64 | total_bytes u64 | crc32 u32 |
//                 n_shards u16 | head_seq u64 * n
//   kSnapshotChunk offset u64 | len u16 | bytes
//   kHeartbeat    n_shards u16 | head_seq u64 * n
//
// Sequencing is per shard and starts at 1; `head_seq` is the last
// assigned sequence number. Acks are cumulative; a gap makes the
// receiver NAK the first missing sequence and the sender retransmits
// from its bounded in-memory buffer. A NAK below the buffer (receiver
// too far behind) or an explicit kSnapshotReq triggers a full snapshot
// transfer, after which records with seq > head apply on top — the
// network twin of "decode snapshot-<g>, replay journal-<g>-*".
//
// Every message carries the sender's lease epoch. A receiver ignores
// messages below its minimum epoch, so a deposed active's stragglers
// cannot reach a promoted standby's registry.
#pragma once

#include <sys/socket.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/persist/journal.hpp"
#include "net/udp.hpp"

namespace choir::net::ha {

inline constexpr std::uint32_t kReplMagic = 0x524F4843;  // "CHOR" LE
inline constexpr std::uint8_t kReplVersion = 1;
inline constexpr std::size_t kReplHeaderBytes = 16;
/// Payload budget per datagram, matching the uplink path's MTU stance.
inline constexpr std::size_t kReplMaxDatagramBytes = 1400;

enum class ReplType : std::uint8_t {
  kRecords = 1,
  kAck = 2,
  kNak = 3,
  kSnapshotReq = 4,
  kSnapshotMeta = 5,
  kSnapshotChunk = 6,
  kHeartbeat = 7,
};

/// One decoded CHOR datagram (fields populated per `type`).
struct ReplMessage {
  ReplType type = ReplType::kHeartbeat;
  std::uint64_t epoch = 0;
  // kRecords / kNak
  std::uint16_t shard = 0;
  std::uint64_t first_seq = 0;   ///< kRecords
  std::uint16_t count = 0;       ///< framed records in the datagram
  std::vector<persist::JournalRecord> records;
  std::uint64_t nak_from = 0;    ///< kNak
  // kAck / kHeartbeat / kSnapshotMeta
  std::vector<std::uint64_t> seqs;
  // kSnapshotMeta / kSnapshotChunk
  std::uint64_t generation = 0;
  std::uint64_t total_bytes = 0;
  std::uint32_t crc = 0;
  std::uint64_t offset = 0;
  std::string chunk;
};

std::string encode_repl_records(std::uint64_t epoch, std::uint16_t shard,
                                std::uint64_t first_seq,
                                std::uint16_t count,
                                const std::string& framed);
std::string encode_repl_ack(std::uint64_t epoch,
                            const std::vector<std::uint64_t>& acked);
std::string encode_repl_nak(std::uint64_t epoch, std::uint16_t shard,
                            std::uint64_t from_seq);
std::string encode_repl_snapshot_req(std::uint64_t epoch);
std::string encode_repl_snapshot_meta(std::uint64_t epoch,
                                      std::uint64_t generation,
                                      std::uint64_t total_bytes,
                                      std::uint32_t crc,
                                      const std::vector<std::uint64_t>& heads);
std::string encode_repl_snapshot_chunk(std::uint64_t epoch,
                                       std::uint64_t offset,
                                       const std::uint8_t* data,
                                       std::size_t len);
std::string encode_repl_heartbeat(std::uint64_t epoch,
                                  const std::vector<std::uint64_t>& heads);

/// Decodes any CHOR datagram. Returns false on bad magic/version or a
/// malformed body (including a framed record that fails its CRC).
bool decode_repl(const std::uint8_t* data, std::size_t len, ReplMessage& out);

// --------------------------------------------------------------- sender

struct ReplSenderOptions {
  /// Records retained per shard for retransmission. A receiver that
  /// falls further behind than this re-bootstraps from a snapshot.
  std::size_t max_buffered_per_shard = 65536;
  /// Batch flush threshold: records accumulate per shard until this
  /// many payload bytes, then ship as one kRecords datagram. flush()
  /// forces out partial batches (NetServer calls it per ingest).
  std::size_t batch_bytes = 1100;
  double heartbeat_interval_s = 0.2;
};

/// The active side. Plugs into Persistence::set_record_sink; owns a
/// connected UDP socket to the standby plus the rx thread that services
/// acks, naks and snapshot requests.
class ReplicationSender {
 public:
  /// Returns encoded snapshot bytes; fills `generation` and the
  /// per-shard `heads` captured at the same quiesced instant (NetServer
  /// provides this via its checkpoint gate).
  using SnapshotSource = std::function<std::string(
      std::uint64_t& generation, std::vector<std::uint64_t>& heads)>;

  ReplicationSender(const Endpoint& dest, std::size_t n_shards,
                    ReplSenderOptions opts = {});
  ~ReplicationSender();

  ReplicationSender(const ReplicationSender&) = delete;
  ReplicationSender& operator=(const ReplicationSender&) = delete;

  void set_epoch(std::uint64_t e) {
    epoch_.store(e, std::memory_order_relaxed);
  }
  void set_snapshot_source(SnapshotSource src);

  /// Persistence record sink (called under the shard writer's lock).
  void on_record(std::size_t shard, const std::string& framed);
  /// Ships any partially filled batches.
  void flush();

  /// Per-shard head sequence numbers (last assigned).
  std::vector<std::uint64_t> heads() const;
  std::uint64_t acked(std::size_t shard) const;
  std::uint64_t snapshots_sent() const {
    return snapshots_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t retransmits() const {
    return retransmits_.load(std::memory_order_relaxed);
  }

  void stop();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::uint64_t head = 0;
    std::uint64_t acked = 0;
    std::deque<std::pair<std::uint64_t, std::string>> buffered;
    std::string pending;
    std::uint64_t pending_first = 0;
    std::uint16_t pending_count = 0;
  };

  void rx_loop();
  void send_datagram(const std::string& bytes);
  void flush_shard_locked(std::size_t shard_idx, Shard& sh);
  void retransmit_from(std::size_t shard_idx, std::uint64_t from_seq);
  void send_snapshot();

  ReplSenderOptions opts_;
  int fd_ = -1;
  std::atomic<std::uint64_t> epoch_{0};
  std::vector<std::unique_ptr<Shard>> shards_;
  SnapshotSource snapshot_source_;
  std::mutex snapshot_mu_;  ///< serializes snapshot transfers + source swap
  std::atomic<std::uint64_t> snapshots_sent_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<bool> stop_{false};
  std::thread rx_thread_;
};

// ------------------------------------------------------------- receiver

struct ReplReceiverOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port
  bool bind_any = false;
  /// Bootstrap nag interval: how often to re-send kSnapshotReq until a
  /// complete snapshot lands.
  double snapshot_req_interval_s = 0.2;
  /// Tests only: silently drop the first N kRecords datagrams to force
  /// the NAK/retransmit path end-to-end.
  int debug_drop_records = 0;
};

/// The standby side. Binds a UDP port, reassembles the snapshot, then
/// applies records in per-shard sequence order via the callbacks (both
/// invoked on the receive thread).
class ReplicationReceiver {
 public:
  struct Callbacks {
    /// Complete snapshot: encoded bytes + the per-shard heads it covers.
    std::function<void(const std::string& snapshot_bytes,
                       const std::vector<std::uint64_t>& heads,
                       std::uint64_t generation, std::uint64_t epoch)>
        on_snapshot;
    /// One in-order journal record (only after on_snapshot).
    std::function<void(const persist::JournalRecord&)> on_record;
  };

  ReplicationReceiver(Callbacks cb, std::size_t n_shards,
                      ReplReceiverOptions opts = {});
  ~ReplicationReceiver();

  ReplicationReceiver(const ReplicationReceiver&) = delete;
  ReplicationReceiver& operator=(const ReplicationReceiver&) = delete;

  std::uint16_t port() const { return port_; }
  bool bootstrapped() const {
    return bootstrapped_.load(std::memory_order_acquire);
  }
  std::uint64_t applied_records() const {
    return applied_.load(std::memory_order_relaxed);
  }
  std::uint64_t naks_sent() const {
    return naks_.load(std::memory_order_relaxed);
  }
  /// Sender's epoch as last observed on the wire.
  std::uint64_t sender_epoch() const {
    return sender_epoch_.load(std::memory_order_relaxed);
  }
  /// Records the sender has assigned but we have not applied, from the
  /// latest heartbeat — the replication lag.
  std::uint64_t lag_records() const;
  /// Promotion fence: datagrams with epoch < `e` are ignored from now
  /// on, so a deposed active's stragglers cannot mutate our registry.
  void set_min_epoch(std::uint64_t e) {
    min_epoch_.store(e, std::memory_order_relaxed);
  }

  void stop();

 private:
  void rx_loop();
  void handle(const ReplMessage& m);
  void reply(const std::string& bytes);
  /// Cumulative acked seq per shard (mu_ held).
  std::vector<std::uint64_t> acked_locked() const;

  Callbacks cb_;
  std::size_t n_shards_;
  ReplReceiverOptions opts_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<bool> bootstrapped_{false};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> naks_{0};
  std::atomic<std::uint64_t> sender_epoch_{0};
  std::atomic<std::uint64_t> min_epoch_{0};

  std::mutex mu_;  ///< guards the reply address + seq/snapshot state
  bool have_peer_ = false;
  sockaddr_storage peer_{};
  std::uint32_t peer_len_ = 0;
  std::vector<std::uint64_t> next_seq_;   ///< per shard, valid once bootstrapped
  std::vector<std::uint64_t> last_heads_; ///< from heartbeats
  // snapshot reassembly
  bool snap_meta_ = false;
  std::uint64_t snap_generation_ = 0;
  std::uint64_t snap_epoch_ = 0;
  std::uint32_t snap_crc_ = 0;
  std::vector<std::uint64_t> snap_heads_;
  std::string snap_buf_;
  std::vector<bool> snap_chunk_got_;
  std::size_t snap_chunks_needed_ = 0;
  std::size_t snap_chunks_got_ = 0;
  int drop_budget_ = 0;

  std::thread rx_thread_;
};

}  // namespace choir::net::ha
