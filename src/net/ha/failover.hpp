// Gateway-side uplink failover: primary/secondary destination, CHOA acks,
// retransmit, and a dual-send window during switchover.
//
// The plain UdpUplinkSender is fire-and-forget — correct while the
// netserver is up, silent loss while it is down. With HA the ingest
// server acks every datagram (net/udp.hpp, CHOA), so the gateway can
// run a lightweight reliability loop per batch:
//
//   round: send every unacked datagram to the current destination,
//          collect acks until the round timeout;
//   switch when a round yields zero acks from the current destination
//          (it is dead/partitioned) or an ack says kAckNotActive (it is
//          a standby) — and keep sending to BOTH destinations for a
//          short dual-send window, because during promotion "who is
//          active" is genuinely ambiguous. Duplicates are harmless by
//          construction: the netserver's cross-gateway dedup and FCnt
//          windows absorb them (that is the whole exactly-once design).
//
// Acks are matched to datagrams by the FNV-1a hash of the datagram
// bytes, so the uplink wire format itself is untouched.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/udp.hpp"
#include "net/uplink.hpp"

namespace choir::net::ha {

struct FailoverOptions {
  double ack_timeout_s = 0.25;  ///< per-round ack collection window
  int max_rounds = 20;          ///< give up (leave frames unacked) after this
  int dual_send_rounds = 2;     ///< rounds to mirror to the old dest after a switch
};

class FailoverUplinkSender {
 public:
  struct Report {
    std::size_t datagrams = 0;       ///< distinct datagrams in the batch
    std::size_t acked = 0;           ///< datagrams confirmed by an ack
    std::size_t sends = 0;           ///< total transmissions (incl. retries)
    bool switched = false;           ///< failed over during this batch
    int final_dest = 0;              ///< 0 = primary, 1 = secondary
    std::uint64_t peer_epoch = 0;    ///< last acking server's HA epoch
  };

  /// Opens connected sockets to both destinations. Throws on bad
  /// addresses. `secondary` may equal `primary` (no failover target).
  FailoverUplinkSender(const Endpoint& primary, const Endpoint& secondary,
                       FailoverOptions opts = {});
  ~FailoverUplinkSender();

  FailoverUplinkSender(const FailoverUplinkSender&) = delete;
  FailoverUplinkSender& operator=(const FailoverUplinkSender&) = delete;

  /// Sends `frames`, retransmitting until every datagram is acked, the
  /// round budget runs out, or no server answers. Blocking; returns the
  /// accounting either way (unacked > 0 means frames may be lost —
  /// which is safe to retry wholesale later: dedup absorbs it).
  Report send_reliable(const std::vector<UplinkFrame>& frames);

  int current_dest() const { return current_; }
  std::uint64_t switches() const { return switches_; }

 private:
  int fds_[2] = {-1, -1};
  int current_ = 0;
  int dual_rounds_left_ = 0;
  std::uint64_t switches_ = 0;
  FailoverOptions opts_;
};

}  // namespace choir::net::ha
