// Hot-standby netserver: follows the active's journal stream and holds a
// live, bit-exact replica of its registry, ready to take over.
//
// Two follower modes share the replay machinery (everything funnels into
// NetServer::apply_replicated, i.e. the *real* DeviceRegistry paths):
//
//  * Local filesystem (`follow_dir`): bootstrap from the committed
//    snapshot generation in the active's --state-dir, then tail its
//    journals with JournalTail. Single-machine HA with no network
//    between the pair — the journal bytes on disk ARE the replication
//    stream. Rotation is followed without re-reading the new snapshot:
//    the active seals journals before committing, so draining the old
//    generation's files to EOF leaves the standby holding exactly the
//    state the new snapshot encodes.
//
//  * Network (`repl_listen`): bind a CHOR receiver, bootstrap from a
//    streamed snapshot, apply records in per-shard sequence order.
//
// Promotion (either mode): final drain -> fence -> attach persistence
// with the new lease epoch (sealing generation g+1 on top of the
// followed state, no disk re-recovery) -> the caller starts ingest.
// A torn record in a drained tail is the active's un-flushed death tail:
// replay stops exactly there, the same place disk recovery would stop.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ha/replication.hpp"
#include "net/ha/tail.hpp"
#include "net/server.hpp"

namespace choir::net::ha {

enum class HaRole : std::uint8_t { kStandby = 0, kPromoting = 1, kActive = 2 };
const char* ha_role_name(HaRole r);

struct StandbyOptions {
  /// Configuration for the replica server. persist.dir must be empty —
  /// the standby runs without persistence until promotion attaches it.
  NetServerConfig server{};
  /// Local mode: the active's --state-dir.
  std::string follow_dir;
  /// Network mode: bind a CHOR receiver (used when follow_dir is empty).
  bool repl_enabled = false;
  std::uint16_t repl_listen = 0;
  bool repl_bind_any = false;
  int repl_debug_drop_records = 0;  ///< tests: force the NAK path
};

struct StandbyLag {
  std::uint64_t bytes = 0;    ///< local mode: journal bytes not yet applied
  std::uint64_t records = 0;  ///< network mode: sender head - applied
  std::uint64_t applied = 0;  ///< records applied since bootstrap
};

class StandbyServer {
 public:
  explicit StandbyServer(StandbyOptions opts);
  ~StandbyServer();

  StandbyServer(const StandbyServer&) = delete;
  StandbyServer& operator=(const StandbyServer&) = delete;

  /// The replica. Recreated on a re-bootstrap (rebootstraps() ticks), so
  /// do not cache the reference across poll() calls.
  NetServer& server() { return *server_; }
  const NetServer& server() const { return *server_; }

  HaRole role() const { return role_.load(std::memory_order_acquire); }
  bool bootstrapped() const { return bootstrapped_; }
  /// Generation being followed (local) or streamed from (network).
  std::uint64_t followed_generation() const { return generation_; }
  /// Active's epoch as seen in MANIFEST (local) / on the wire (network).
  std::uint64_t followed_epoch() const;

  /// Local mode: one follower step — bootstrap if needed, drain newly
  /// appended records, follow a generation rotation, re-bootstrap when
  /// too far behind. Call at the follower's poll cadence. Network mode:
  /// refreshes lag gauges only (the receiver thread applies records).
  void poll();

  StandbyLag lag() const;
  std::uint64_t rebootstraps() const { return rebootstraps_; }
  /// True when a drained tail ended in a torn/damaged record — after a
  /// kill this marks the active's lost un-flushed tail (expected); while
  /// the active lives it forces a re-bootstrap at the next rotation.
  bool tail_damaged() const;

  /// Takes over: drains the final tail (local) or fences the receiver at
  /// opt.epoch (network), attaches persistence (opt.epoch must hold the
  /// new lease's epoch; opt.dir the state dir to own), seals the
  /// takeover generation, flips role to kActive. The caller then starts
  /// ingest. Throws persist::FencedError if an even newer epoch beat us.
  void promote(const persist::PersistOptions& opt);

  ReplicationReceiver* receiver() { return receiver_.get(); }

  /// Releases the promoted server to the caller (e.g. the citysim
  /// failover drill hands it to the engine). Valid only after promote();
  /// the StandbyServer is spent afterwards.
  std::unique_ptr<NetServer> take_server();

 private:
  void bootstrap_local();
  void reset();
  void open_tails(std::uint64_t gen);
  /// Drains every tail once, applying records. Returns applied count.
  std::uint64_t drain_tails();
  void export_gauges() const;

  StandbyOptions opts_;
  std::unique_ptr<NetServer> server_;
  std::unique_ptr<ReplicationReceiver> receiver_;
  std::vector<std::unique_ptr<JournalTail>> tails_;
  std::atomic<HaRole> role_{HaRole::kStandby};
  bool bootstrapped_ = false;
  std::uint64_t generation_ = 0;
  std::uint64_t manifest_epoch_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t rebootstraps_ = 0;
};

}  // namespace choir::net::ha
