#include "net/ha/replication.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "net/persist/format.hpp"
#include "obs/obs.hpp"

namespace choir::net::ha {

using persist::Cursor;
using persist::crc32;
using persist::put_u16;
using persist::put_u32;
using persist::put_u64;
using persist::put_u8;

/// Snapshot chunk stride: every kSnapshotChunk's offset is a multiple of
/// this (the last chunk is shorter), which lets the receiver dedup
/// retransmitted chunks by offset / stride.
inline constexpr std::size_t kReplSnapChunkBytes = 1024;

namespace {

std::string repl_header(ReplType type, std::uint64_t epoch) {
  std::string out;
  put_u32(out, kReplMagic);
  put_u8(out, kReplVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u16(out, 0);
  put_u64(out, epoch);
  return out;
}

void put_seq_list(std::string& out, const std::vector<std::uint64_t>& seqs) {
  put_u16(out, static_cast<std::uint16_t>(seqs.size()));
  for (std::uint64_t s : seqs) put_u64(out, s);
}

bool get_seq_list(Cursor& c, std::vector<std::uint64_t>& seqs) {
  const std::uint16_t n = c.u16();
  if (!c.ok || n > 4096) return false;
  seqs.resize(n);
  for (std::uint16_t i = 0; i < n; ++i) seqs[i] = c.u64();
  return c.ok;
}

}  // namespace

std::string encode_repl_records(std::uint64_t epoch, std::uint16_t shard,
                                std::uint64_t first_seq, std::uint16_t count,
                                const std::string& framed) {
  std::string out = repl_header(ReplType::kRecords, epoch);
  put_u16(out, shard);
  put_u64(out, first_seq);
  put_u16(out, count);
  out += framed;
  return out;
}

std::string encode_repl_ack(std::uint64_t epoch,
                            const std::vector<std::uint64_t>& acked) {
  std::string out = repl_header(ReplType::kAck, epoch);
  put_seq_list(out, acked);
  return out;
}

std::string encode_repl_nak(std::uint64_t epoch, std::uint16_t shard,
                            std::uint64_t from_seq) {
  std::string out = repl_header(ReplType::kNak, epoch);
  put_u16(out, shard);
  put_u64(out, from_seq);
  return out;
}

std::string encode_repl_snapshot_req(std::uint64_t epoch) {
  return repl_header(ReplType::kSnapshotReq, epoch);
}

std::string encode_repl_snapshot_meta(
    std::uint64_t epoch, std::uint64_t generation, std::uint64_t total_bytes,
    std::uint32_t crc, const std::vector<std::uint64_t>& heads) {
  std::string out = repl_header(ReplType::kSnapshotMeta, epoch);
  put_u64(out, generation);
  put_u64(out, total_bytes);
  put_u32(out, crc);
  put_seq_list(out, heads);
  return out;
}

std::string encode_repl_snapshot_chunk(std::uint64_t epoch,
                                       std::uint64_t offset,
                                       const std::uint8_t* data,
                                       std::size_t len) {
  std::string out = repl_header(ReplType::kSnapshotChunk, epoch);
  put_u64(out, offset);
  put_u16(out, static_cast<std::uint16_t>(len));
  out.append(reinterpret_cast<const char*>(data), len);
  return out;
}

std::string encode_repl_heartbeat(std::uint64_t epoch,
                                  const std::vector<std::uint64_t>& heads) {
  std::string out = repl_header(ReplType::kHeartbeat, epoch);
  put_seq_list(out, heads);
  return out;
}

bool decode_repl(const std::uint8_t* data, std::size_t len, ReplMessage& out) {
  Cursor c{data, len, 0, true};
  if (c.u32() != kReplMagic || c.u8() != kReplVersion) return false;
  const std::uint8_t type = c.u8();
  c.u16();  // reserved
  out.epoch = c.u64();
  if (!c.ok) return false;

  switch (static_cast<ReplType>(type)) {
    case ReplType::kRecords: {
      out.type = ReplType::kRecords;
      out.shard = c.u16();
      out.first_seq = c.u64();
      out.count = c.u16();
      if (!c.ok) return false;
      out.records.clear();
      std::size_t pos = c.pos;
      for (std::uint16_t i = 0; i < out.count; ++i) {
        std::size_t framed = 0;
        persist::JournalRecord r;
        const auto st =
            persist::parse_one_record(data + pos, len - pos, framed, r);
        if (st != persist::RecordParse::kRecord) return false;
        out.records.push_back(std::move(r));
        pos += framed;
      }
      return pos == len;
    }
    case ReplType::kAck:
      out.type = ReplType::kAck;
      return get_seq_list(c, out.seqs);
    case ReplType::kNak:
      out.type = ReplType::kNak;
      out.shard = c.u16();
      out.nak_from = c.u64();
      return c.ok;
    case ReplType::kSnapshotReq:
      out.type = ReplType::kSnapshotReq;
      return true;
    case ReplType::kSnapshotMeta:
      out.type = ReplType::kSnapshotMeta;
      out.generation = c.u64();
      out.total_bytes = c.u64();
      out.crc = c.u32();
      return c.ok && get_seq_list(c, out.seqs);
    case ReplType::kSnapshotChunk: {
      out.type = ReplType::kSnapshotChunk;
      out.offset = c.u64();
      const std::uint16_t n = c.u16();
      if (!c.ok || !c.need(n)) return false;
      out.chunk.assign(reinterpret_cast<const char*>(data + c.pos), n);
      return true;
    }
    case ReplType::kHeartbeat:
      out.type = ReplType::kHeartbeat;
      return get_seq_list(c, out.seqs);
    default:
      return false;
  }
}

// --------------------------------------------------------------- sender

ReplicationSender::ReplicationSender(const Endpoint& dest,
                                     std::size_t n_shards,
                                     ReplSenderOptions opts)
    : opts_(opts) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(dest.port);
  if (::inet_pton(AF_INET, dest.host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("repl sender: bad IPv4 address " + dest.host);
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("repl sender: socket() failed");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("repl sender: connect() failed");
  }
  shards_.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
  rx_thread_ = std::thread([this] { rx_loop(); });
}

ReplicationSender::~ReplicationSender() { stop(); }

void ReplicationSender::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(fd_, SHUT_RDWR);
  if (rx_thread_.joinable()) rx_thread_.join();
  ::close(fd_);
  fd_ = -1;
}

void ReplicationSender::set_snapshot_source(SnapshotSource src) {
  std::lock_guard<std::mutex> lk(snapshot_mu_);
  snapshot_source_ = std::move(src);
}

void ReplicationSender::send_datagram(const std::string& bytes) {
  (void)::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  CHOIR_OBS_COUNT("ha.repl.sent_datagrams", 1);
}

void ReplicationSender::flush_shard_locked(std::size_t shard_idx, Shard& sh) {
  if (sh.pending_count == 0) return;
  send_datagram(encode_repl_records(
      epoch_.load(std::memory_order_relaxed),
      static_cast<std::uint16_t>(shard_idx), sh.pending_first,
      sh.pending_count, sh.pending));
  CHOIR_OBS_COUNT("ha.repl.sent_records", sh.pending_count);
  sh.pending.clear();
  sh.pending_first = 0;
  sh.pending_count = 0;
}

void ReplicationSender::on_record(std::size_t shard, const std::string& framed) {
  Shard& sh = *shards_[shard];
  std::lock_guard<std::mutex> lk(sh.mu);
  const std::uint64_t seq = ++sh.head;
  sh.buffered.emplace_back(seq, framed);
  while (sh.buffered.size() > opts_.max_buffered_per_shard)
    sh.buffered.pop_front();  // receiver this far behind re-bootstraps
  if (sh.pending_count == 0) sh.pending_first = seq;
  sh.pending += framed;
  ++sh.pending_count;
  if (sh.pending.size() >= opts_.batch_bytes ||
      sh.pending_count == std::numeric_limits<std::uint16_t>::max())
    flush_shard_locked(shard, sh);
}

void ReplicationSender::flush() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& sh = *shards_[i];
    std::lock_guard<std::mutex> lk(sh.mu);
    flush_shard_locked(i, sh);
  }
}

std::vector<std::uint64_t> ReplicationSender::heads() const {
  std::vector<std::uint64_t> h(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lk(shards_[i]->mu);
    h[i] = shards_[i]->head;
  }
  return h;
}

std::uint64_t ReplicationSender::acked(std::size_t shard) const {
  std::lock_guard<std::mutex> lk(shards_[shard]->mu);
  return shards_[shard]->acked;
}

void ReplicationSender::retransmit_from(std::size_t shard_idx,
                                        std::uint64_t from_seq) {
  Shard& sh = *shards_[shard_idx];
  std::vector<std::pair<std::uint64_t, std::string>> to_send;
  bool need_snapshot = false;
  {
    std::lock_guard<std::mutex> lk(sh.mu);
    // Whatever is still pending must ship first so the buffer covers it.
    flush_shard_locked(shard_idx, sh);
    if (from_seq > sh.head) return;  // receiver is ahead?! nothing to do
    if (sh.buffered.empty() || from_seq < sh.buffered.front().first) {
      need_snapshot = true;  // asked below our retention: full bootstrap
    } else {
      for (const auto& [seq, bytes] : sh.buffered)
        if (seq >= from_seq) to_send.emplace_back(seq, bytes);
    }
  }
  if (need_snapshot) {
    send_snapshot();
    return;
  }
  // Re-batch outside the lock.
  std::string framed;
  std::uint64_t first = 0;
  std::uint16_t count = 0;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  auto ship = [&] {
    if (count == 0) return;
    send_datagram(encode_repl_records(
        epoch, static_cast<std::uint16_t>(shard_idx), first, count, framed));
    retransmits_.fetch_add(count, std::memory_order_relaxed);
    framed.clear();
    count = 0;
  };
  for (const auto& [seq, bytes] : to_send) {
    if (count == 0) first = seq;
    framed += bytes;
    ++count;
    if (framed.size() >= opts_.batch_bytes) ship();
  }
  ship();
}

void ReplicationSender::send_snapshot() {
  std::lock_guard<std::mutex> lk(snapshot_mu_);
  if (!snapshot_source_) return;
  std::uint64_t generation = 0;
  std::vector<std::uint64_t> heads;
  const std::string bytes = snapshot_source_(generation, heads);
  if (bytes.empty()) return;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  send_datagram(encode_repl_snapshot_meta(
      epoch, generation, bytes.size(),
      crc32(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()),
      heads));
  for (std::size_t off = 0; off < bytes.size(); off += kReplSnapChunkBytes) {
    const std::size_t n = std::min(kReplSnapChunkBytes, bytes.size() - off);
    send_datagram(encode_repl_snapshot_chunk(
        epoch, off, reinterpret_cast<const std::uint8_t*>(bytes.data()) + off,
        n));
    // Pace bursts so a loopback-sized rcvbuf survives a large registry;
    // a lost chunk is re-requested by the receiver anyway.
    if ((off / kReplSnapChunkBytes) % 64 == 63)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  snapshots_sent_.fetch_add(1, std::memory_order_relaxed);
  CHOIR_OBS_COUNT("ha.repl.snapshots_sent", 1);
}

void ReplicationSender::rx_loop() {
  std::vector<std::uint8_t> buf(64 * 1024);
  auto last_hb = std::chrono::steady_clock::now();
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50 /* ms */);
    const auto now = std::chrono::steady_clock::now();
    if (std::chrono::duration<double>(now - last_hb).count() >=
        opts_.heartbeat_interval_s) {
      last_hb = now;
      flush();  // ship any straggling partial batches
      send_datagram(encode_repl_heartbeat(
          epoch_.load(std::memory_order_relaxed), heads()));
    }
    if (pr <= 0 || !(pfd.revents & POLLIN)) continue;
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n <= 0) continue;
    ReplMessage m;
    if (!decode_repl(buf.data(), static_cast<std::size_t>(n), m)) continue;
    switch (m.type) {
      case ReplType::kAck: {
        for (std::size_t i = 0; i < m.seqs.size() && i < shards_.size(); ++i) {
          Shard& sh = *shards_[i];
          std::lock_guard<std::mutex> lk(sh.mu);
          if (m.seqs[i] > sh.acked) sh.acked = m.seqs[i];
          while (!sh.buffered.empty() &&
                 sh.buffered.front().first <= sh.acked)
            sh.buffered.pop_front();
        }
        break;
      }
      case ReplType::kNak:
        if (m.shard < shards_.size()) retransmit_from(m.shard, m.nak_from);
        break;
      case ReplType::kSnapshotReq:
        send_snapshot();
        break;
      default:
        break;  // sender ignores receiver-bound types
    }
  }
}

// ------------------------------------------------------------- receiver

ReplicationReceiver::ReplicationReceiver(Callbacks cb, std::size_t n_shards,
                                         ReplReceiverOptions opts)
    : cb_(std::move(cb)), n_shards_(n_shards), opts_(opts) {
  drop_budget_ = opts_.debug_drop_records;
  next_seq_.assign(n_shards_, 1);
  last_heads_.assign(n_shards_, 0);
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("repl receiver: socket() failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(opts_.bind_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("repl receiver: cannot bind port " +
                             std::to_string(opts_.port));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  rx_thread_ = std::thread([this] { rx_loop(); });
}

ReplicationReceiver::~ReplicationReceiver() { stop(); }

void ReplicationReceiver::stop() {
  if (fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  ::shutdown(fd_, SHUT_RDWR);
  if (rx_thread_.joinable()) rx_thread_.join();
  ::close(fd_);
  fd_ = -1;
}

std::vector<std::uint64_t> ReplicationReceiver::acked_locked() const {
  std::vector<std::uint64_t> acked(n_shards_);
  for (std::size_t i = 0; i < n_shards_; ++i) acked[i] = next_seq_[i] - 1;
  return acked;
}

std::uint64_t ReplicationReceiver::lag_records() const {
  std::lock_guard<std::mutex> lk(const_cast<std::mutex&>(mu_));
  std::uint64_t lag = 0;
  for (std::size_t i = 0; i < n_shards_; ++i) {
    const std::uint64_t applied_through = next_seq_[i] - 1;
    if (last_heads_[i] > applied_through)
      lag += last_heads_[i] - applied_through;
  }
  return lag;
}

void ReplicationReceiver::reply(const std::string& bytes) {
  // mu_ held by caller: peer_ is stable.
  if (!have_peer_) return;
  (void)::sendto(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&peer_), peer_len_);
}

void ReplicationReceiver::rx_loop() {
  std::vector<std::uint8_t> buf(64 * 1024);
  auto last_req = std::chrono::steady_clock::now() -
                  std::chrono::hours(1);  // request immediately
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 50 /* ms */);

    if (!bootstrapped_.load(std::memory_order_relaxed)) {
      const auto now = std::chrono::steady_clock::now();
      if (std::chrono::duration<double>(now - last_req).count() >=
          opts_.snapshot_req_interval_s) {
        last_req = now;
        std::lock_guard<std::mutex> lk(mu_);
        reply(encode_repl_snapshot_req(min_epoch_.load()));
      }
    }

    if (pr <= 0 || !(pfd.revents & POLLIN)) continue;
    sockaddr_storage src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n = ::recvfrom(fd_, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n <= 0) continue;
    ReplMessage m;
    if (!decode_repl(buf.data(), static_cast<std::size_t>(n), m)) continue;
    if (m.epoch < min_epoch_.load(std::memory_order_relaxed))
      continue;  // deposed sender: fenced at the wire
    sender_epoch_.store(m.epoch, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu_);
      std::memcpy(&peer_, &src, src_len);
      peer_len_ = src_len;
      have_peer_ = true;
    }
    handle(m);
  }
}

void ReplicationReceiver::handle(const ReplMessage& m) {
  std::unique_lock<std::mutex> lk(mu_);
  switch (m.type) {
    case ReplType::kRecords: {
      if (!bootstrapped_.load(std::memory_order_relaxed)) break;
      if (m.shard >= n_shards_ || m.records.size() != m.count) break;
      if (drop_budget_ > 0) {
        --drop_budget_;
        break;
      }
      std::uint64_t& next = next_seq_[m.shard];
      if (m.first_seq > next) {
        ++naks_;
        CHOIR_OBS_COUNT("ha.repl.naks", 1);
        reply(encode_repl_nak(min_epoch_.load(), m.shard, next));
        break;
      }
      if (m.first_seq + m.count <= next) {
        reply(encode_repl_ack(min_epoch_.load(), acked_locked()));
        break;  // stale duplicate (retransmit we already have)
      }
      const std::size_t skip = static_cast<std::size_t>(next - m.first_seq);
      for (std::size_t i = skip; i < m.records.size(); ++i) {
        cb_.on_record(m.records[i]);
        applied_.fetch_add(1, std::memory_order_relaxed);
      }
      next = m.first_seq + m.count;
      CHOIR_OBS_COUNT("ha.repl.applied_records", m.records.size() - skip);
      reply(encode_repl_ack(min_epoch_.load(), acked_locked()));
      break;
    }
    case ReplType::kHeartbeat: {
      for (std::size_t i = 0; i < m.seqs.size() && i < n_shards_; ++i)
        last_heads_[i] = m.seqs[i];
      if (!bootstrapped_.load(std::memory_order_relaxed)) break;
      // A heartbeat head beyond our applied point means datagrams were
      // lost with nothing following to expose the gap — NAK to recover.
      for (std::size_t i = 0; i < m.seqs.size() && i < n_shards_; ++i) {
        if (m.seqs[i] >= next_seq_[i]) {
          reply(encode_repl_nak(min_epoch_.load(),
                                static_cast<std::uint16_t>(i), next_seq_[i]));
        }
      }
      reply(encode_repl_ack(min_epoch_.load(), acked_locked()));
      break;
    }
    case ReplType::kSnapshotMeta: {
      if (bootstrapped_.load(std::memory_order_relaxed)) break;
      if (m.seqs.size() != n_shards_ || m.total_bytes == 0 ||
          m.total_bytes > (1ull << 32))
        break;
      // (Re)start reassembly unless this is the same snapshot continuing.
      if (!snap_meta_ || snap_crc_ != m.crc ||
          snap_buf_.size() != m.total_bytes) {
        snap_meta_ = true;
        snap_generation_ = m.generation;
        snap_epoch_ = m.epoch;
        snap_crc_ = m.crc;
        snap_heads_ = m.seqs;
        snap_buf_.assign(m.total_bytes, '\0');
        snap_chunks_needed_ =
            (m.total_bytes + kReplSnapChunkBytes - 1) / kReplSnapChunkBytes;
        snap_chunk_got_.assign(snap_chunks_needed_, false);
        snap_chunks_got_ = 0;
      }
      break;
    }
    case ReplType::kSnapshotChunk: {
      if (bootstrapped_.load(std::memory_order_relaxed) || !snap_meta_) break;
      if (m.offset % kReplSnapChunkBytes != 0) break;
      const std::size_t idx = m.offset / kReplSnapChunkBytes;
      if (idx >= snap_chunks_needed_ ||
          m.offset + m.chunk.size() > snap_buf_.size())
        break;
      if (snap_chunk_got_[idx]) break;
      std::memcpy(snap_buf_.data() + m.offset, m.chunk.data(),
                  m.chunk.size());
      snap_chunk_got_[idx] = true;
      if (++snap_chunks_got_ < snap_chunks_needed_) break;
      if (crc32(reinterpret_cast<const std::uint8_t*>(snap_buf_.data()),
                snap_buf_.size()) != snap_crc_) {
        snap_meta_ = false;  // damaged in flight: re-request from scratch
        break;
      }
      for (std::size_t i = 0; i < n_shards_; ++i)
        next_seq_[i] = snap_heads_[i] + 1;
      const std::string bytes = std::move(snap_buf_);
      const auto heads = snap_heads_;
      const std::uint64_t gen = snap_generation_;
      const std::uint64_t epoch = snap_epoch_;
      bootstrapped_.store(true, std::memory_order_release);
      reply(encode_repl_ack(min_epoch_.load(), acked_locked()));
      lk.unlock();  // the bootstrap callback may be slow; free the state
      if (cb_.on_snapshot) cb_.on_snapshot(bytes, heads, gen, epoch);
      return;
    }
    default:
      break;  // receiver ignores sender-bound types
  }
}

}  // namespace choir::net::ha
