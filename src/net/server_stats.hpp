// Plain-value snapshot of the NetServer ingest counters. Split out of
// server.hpp so the persistence tier (src/net/persist/) can serialize it
// without pulling in the full server — and its include graph — in turn.
#pragma once

#include <cstdint>
#include <string>

namespace choir::net {

/// Counter snapshot (mirrored into the obs registry, serialized by the
/// persistence snapshot, recovered across restarts).
struct NetServerStats {
  std::uint64_t uplinks = 0;          ///< every reception offered
  std::uint64_t accepted = 0;
  std::uint64_t dedup_dropped = 0;
  std::uint64_t dedup_upgraded = 0;   ///< duplicates that won on SNR
  std::uint64_t replay_rejected = 0;
  std::uint64_t unknown_device = 0;
  std::uint64_t malformed = 0;
};

std::string format_stats(const NetServerStats& s);

}  // namespace choir::net
