// Adaptive data rate: SF / transmit-power recommendations from a device's
// SNR history (LoRaWAN-network-server flavor).
//
// The link budget target is the decode floor of the device's current SF
// plus an installation margin. LoRa gains roughly a constant number of dB
// of demodulation floor per SF step, so the required SNR is modeled as
//
//   required(sf) = required_snr_sf7_db - (sf - 7) * sf_step_db
//
// and the headroom is measured against the *max* SNR of the history ring
// (the LoRaWAN ADR convention: the best recent reception bounds what the
// link can do; the margin absorbs fading). Headroom is spent in 3 dB
// steps, dropping SF first (airtime is the scarce resource, paper Sec. 2)
// and transmit power second; negative headroom claws both back in the
// opposite order. Devices that bottom out below the largest SF's floor are
// the team manager's clientele (docs/NETSERVER.md).
#pragma once

#include "net/registry.hpp"

namespace choir::net {

struct AdrOptions {
  double margin_db = 8.0;  ///< installation margin over the decode floor
  /// Fewest SNR history samples before the planner will move. History
  /// samples are only comparable when they were received at the same
  /// transmit power, so the caller must clear the device's history when it
  /// applies a change (NetServer::note_adr_applied) — this floor then
  /// guarantees every decision sees a full fresh window, which is what
  /// keeps the planner from ping-ponging on fading wobble: without it,
  /// stale high-power samples inflate the headroom after a power cut and
  /// the planner chases its own tail.
  std::uint8_t min_samples = 8;
  int min_sf = 7;
  int max_sf = 12;
  /// Decode floor at SF7, per-sample SNR (matches the collision decoder's
  /// usable range rather than hardware datasheet sensitivity).
  double required_snr_sf7_db = -5.0;
  double sf_step_db = 2.5;   ///< floor improvement per SF increment
  double step_db = 3.0;      ///< headroom spent/recovered per ADR step
  double max_power_dbm = 14.0;
  double min_power_dbm = 2.0;
};

/// Decode-floor SNR for `sf` under `opt`'s link model.
double required_snr_db(int sf, const AdrOptions& opt);

struct AdrDecision {
  int sf = 0;
  double tx_power_dbm = 0.0;
  double headroom_db = 0.0;  ///< measured margin before adjustment
  bool changed = false;      ///< differs from the device's current setting
};

/// Recommends (SF, power) for a device currently at (current_sf,
/// current_power_dbm) given its session SNR history. A device with no
/// history keeps its settings.
AdrDecision recommend_adr(const DeviceSession& s, int current_sf,
                          double current_power_dbm,
                          const AdrOptions& opt = {});

}  // namespace choir::net
