#include "net/dedup.hpp"

#include <stdexcept>

namespace choir::net {

CrossGatewayDedup::CrossGatewayDedup(const DedupOptions& opt) : opt_(opt) {
  if (opt_.shard_bits > 12)
    throw std::invalid_argument("dedup: shard_bits > 12");
  if (opt_.window_s <= 0.0) throw std::invalid_argument("dedup: window_s");
  const std::size_t n = std::size_t{1} << opt_.shard_bits;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

void CrossGatewayDedup::sweep(Shard& sh, double now_s) {
  while (!sh.fifo.empty() && sh.fifo.front().first <= now_s) {
    // The FIFO may hold a stale entry when a key was evicted early by the
    // size cap and re-inserted; only erase a map entry that actually
    // expired.
    auto it = sh.entries.find(sh.fifo.front().second);
    if (it != sh.entries.end() && it->second.expires_s <= now_s)
      sh.entries.erase(it);
    sh.fifo.pop_front();
  }
}

DedupOutcome CrossGatewayDedup::check_and_insert(const DedupKey& key,
                                                 float snr_db, double now_s) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  sweep(sh, now_s);

  auto [it, inserted] = sh.entries.try_emplace(key);
  if (inserted) {
    it->second.best_snr_db = snr_db;
    it->second.expires_s = now_s + opt_.window_s;
    sh.fifo.emplace_back(it->second.expires_s, key);
    if (sh.entries.size() > opt_.max_entries_per_shard) {
      // Oldest-first eviction keeps memory bounded; evicting a live entry
      // merely re-opens its key, the registry still rejects the replay.
      while (!sh.fifo.empty() &&
             sh.entries.size() > opt_.max_entries_per_shard) {
        sh.entries.erase(sh.fifo.front().second);
        sh.fifo.pop_front();
      }
    }
    return {};
  }

  DedupOutcome out;
  out.duplicate = true;
  out.feed_index = it->second.feed_index;
  out.trace_id = it->second.trace_id;
  if (snr_db > it->second.best_snr_db) {
    it->second.best_snr_db = snr_db;
    out.improved = true;
  }
  return out;
}

void CrossGatewayDedup::set_feed_index(const DedupKey& key,
                                       std::uint64_t feed_index) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.entries.find(key);
  if (it != sh.entries.end()) it->second.feed_index = feed_index;
}

void CrossGatewayDedup::set_trace_id(const DedupKey& key,
                                     std::uint64_t trace_id) {
  Shard& sh = shard_for(key);
  std::lock_guard<std::mutex> lock(sh.mu);
  auto it = sh.entries.find(key);
  if (it != sh.entries.end()) it->second.trace_id = trace_id;
}

std::size_t CrossGatewayDedup::pending() const {
  std::size_t n = 0;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh->mu);
    n += sh->entries.size();
  }
  return n;
}

}  // namespace choir::net
