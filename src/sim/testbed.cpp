#include "sim/testbed.hpp"

#include <cmath>

#include "util/types.hpp"

namespace choir::sim {

namespace {

TestbedNode make_node(const TestbedConfig& cfg, std::size_t id, double x,
                      double y, Rng& rng) {
  TestbedNode n;
  n.id = id;
  n.x_m = x;
  n.y_m = y;
  const double cx = cfg.area_width_m / 2.0;
  const double cy = cfg.area_height_m / 2.0;
  n.distance_m = std::hypot(x - cx, y - cy);
  n.snr_db = cfg.budget.sample_snr_db(n.distance_m, cfg.pathloss, rng);
  n.hw = channel::DeviceHardware::sample(cfg.osc, rng);
  return n;
}

}  // namespace

std::vector<TestbedNode> sample_testbed(const TestbedConfig& cfg,
                                        std::size_t count, Rng& rng) {
  std::vector<TestbedNode> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_node(cfg, i, rng.uniform(0.0, cfg.area_width_m),
                            rng.uniform(0.0, cfg.area_height_m), rng));
  }
  return out;
}

std::vector<TestbedNode> sample_ring(const TestbedConfig& cfg,
                                     std::size_t count, double distance_m,
                                     Rng& rng) {
  std::vector<TestbedNode> out;
  out.reserve(count);
  const double cx = cfg.area_width_m / 2.0;
  const double cy = cfg.area_height_m / 2.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double th = rng.phase();
    out.push_back(make_node(cfg, i, cx + distance_m * std::cos(th),
                            cy + distance_m * std::sin(th), rng));
  }
  return out;
}

std::vector<TestbedNode> sample_clustered_testbed(const TestbedConfig& cfg,
                                                  std::size_t buildings,
                                                  std::size_t per_building,
                                                  double spread_m, Rng& rng) {
  std::vector<TestbedNode> out;
  out.reserve(buildings * per_building);
  std::size_t id = 0;
  for (std::size_t b = 0; b < buildings; ++b) {
    const double cx = rng.uniform(spread_m, cfg.area_width_m - spread_m);
    const double cy = rng.uniform(spread_m, cfg.area_height_m - spread_m);
    for (std::size_t s = 0; s < per_building; ++s) {
      const double x = cx + rng.uniform(-spread_m, spread_m);
      const double y = cy + rng.uniform(-spread_m, spread_m);
      out.push_back(make_node(cfg, id++, x, y, rng));
    }
  }
  return out;
}

}  // namespace choir::sim
