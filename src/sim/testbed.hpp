// Testbed geometry: the 3.4 km x 3.2 km urban area of paper Fig 6(b), with
// the base station at the center and client nodes sampled across it.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/oscillator.hpp"
#include "channel/pathloss.hpp"
#include "util/rng.hpp"

namespace choir::sim {

struct TestbedConfig {
  double area_width_m = 3400.0;
  double area_height_m = 3200.0;
  channel::UrbanPathLoss pathloss{};
  channel::LinkBudget budget{};
  channel::OscillatorModel osc{};
};

struct TestbedNode {
  std::size_t id = 0;
  double x_m = 0.0;
  double y_m = 0.0;
  double distance_m = 0.0;  ///< to the base station (area center)
  double snr_db = 0.0;      ///< sampled long-run SNR (includes shadowing)
  channel::DeviceHardware hw{};
};

/// Samples `count` nodes uniformly over the area; each gets a hardware
/// profile and a shadowed link SNR.
std::vector<TestbedNode> sample_testbed(const TestbedConfig& cfg,
                                        std::size_t count, Rng& rng);

/// Samples `count` nodes at a fixed distance ring from the base station
/// (for controlled range experiments).
std::vector<TestbedNode> sample_ring(const TestbedConfig& cfg,
                                     std::size_t count, double distance_m,
                                     Rng& rng);

/// Samples nodes clustered into `buildings` groups of `per_building` nodes
/// each; building centers are uniform over the area and nodes scatter
/// within `spread_m` of their center. Real deployments put many sensors in
/// the same structure — this is what makes team formation possible.
std::vector<TestbedNode> sample_clustered_testbed(const TestbedConfig& cfg,
                                                  std::size_t buildings,
                                                  std::size_t per_building,
                                                  double spread_m, Rng& rng);

}  // namespace choir::sim
