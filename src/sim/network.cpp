#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/collision_decoder.hpp"
#include "lora/demodulator.hpp"
#include "lora/frame.hpp"
#include "net/server.hpp"
#include "net/uplink.hpp"

namespace choir::sim {

namespace {

struct UserState {
  channel::DeviceHardware hw{};
  double snr_db = 0.0;
  double next_tx_s = 0.0;
  double hol_since_s = 0.0;  ///< when the current packet became head-of-line
  int retries = 0;
  std::uint16_t seq = 0;
};

std::vector<std::uint8_t> make_payload(std::size_t user, std::uint16_t seq,
                                       std::size_t len, Rng& rng) {
  std::vector<std::uint8_t> p(len);
  p[0] = static_cast<std::uint8_t>(user);
  p[1] = static_cast<std::uint8_t>(seq & 0xFF);
  p[2] = static_cast<std::uint8_t>(seq >> 8);
  for (std::size_t i = 3; i < len; ++i)
    p[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return p;
}

// Network tier shared by all three MACs. Each sim user u is provisioned as
// DevAddr u in the sharded registry (auto-provisioning off, so a lucky
// CRC-passing garbage decode cannot mint a phantom device), and every
// CRC-clean decode flows through the same dedup -> FCnt-window pipeline a
// real deployment's network server runs. make_payload's [id, seq_lo,
// seq_hi] prefix is exactly the compact device header the tier parses.
class NetTier {
 public:
  explicit NetTier(const NetworkConfig& cfg)
      : server_(make_config()), sf_(static_cast<std::uint8_t>(cfg.phy.sf)) {
    for (std::size_t u = 0; u < cfg.n_users; ++u)
      server_.registry().provision(static_cast<std::uint32_t>(u));
  }

  /// Hands one CRC-clean reception to the server under simulated time.
  /// Returns the accepted device id, or nullopt when the tier rejected it
  /// (duplicate decoder emission, stale/desynced FCnt, unknown device).
  std::optional<std::size_t> deliver(const std::vector<std::uint8_t>& payload,
                                     double snr_db, double cfo_bins,
                                     double timing_samples, double now_s) {
    net::UplinkFrame f = net::make_uplink(
        payload, static_cast<float>(snr_db), static_cast<float>(cfo_bins),
        static_cast<float>(timing_samples), /*gateway=*/0, /*channel=*/0, sf_,
        /*stream_offset=*/0);
    const net::IngestResult r = server_.ingest_at(std::move(f), now_s);
    if (r.status != net::IngestStatus::kAccepted) return std::nullopt;
    return static_cast<std::size_t>(r.dev_addr);
  }

  net::NetServerStats stats() const { return server_.stats(); }

 private:
  static net::NetServerConfig make_config() {
    net::NetServerConfig c;
    c.registry.auto_provision = false;
    // The MACs retransmit with a fresh random payload tail, so a tight
    // FCnt window costs nothing and keeps a garbage decode that happens
    // to pass CRC from desyncing a device for long.
    c.registry.max_fcnt_gap = 8;
    // Long enough to collapse duplicate emissions of one episode (they
    // share a timestamp), far shorter than any retransmission gap.
    c.dedup.window_s = 0.05;
    c.keep_feed = false;
    return c;
  }

  net::NetServer server_;
  std::uint8_t sf_;
};

struct Tally {
  std::size_t delivered = 0;
  std::size_t attempts = 0;
  std::size_t dropped = 0;
  double latency_acc = 0.0;

  void success(double now, double hol_since) {
    ++delivered;
    latency_acc += now - hol_since;
  }
};

void check_config(const NetworkConfig& cfg) {
  cfg.phy.validate();
  if (cfg.n_users == 0) throw std::invalid_argument("network: no users");
  if (cfg.n_users > 255) throw std::invalid_argument("network: >255 users");
  if (cfg.payload_bytes < 4)
    throw std::invalid_argument("network: payload_bytes < 4");
  if (cfg.sim_duration_s <= 0.0)
    throw std::invalid_argument("network: duration");
}

double user_snr(const NetworkConfig& cfg, std::size_t u) {
  if (cfg.user_snr_db.empty()) return 15.0;
  return cfg.user_snr_db[u % cfg.user_snr_db.size()];
}

NetMetrics finish(const NetworkConfig& cfg, const Tally& tally,
                  const net::NetServerStats& net) {
  NetMetrics m;
  m.delivered = tally.delivered;
  m.attempts = tally.attempts;
  m.dropped = tally.dropped;
  m.dedup_dropped = static_cast<std::size_t>(net.dedup_dropped);
  m.replay_rejected = static_cast<std::size_t>(net.replay_rejected);
  m.sim_time_s = cfg.sim_duration_s;
  m.throughput_bps = static_cast<double>(tally.delivered) *
                     static_cast<double>(cfg.payload_bytes) * 8.0 /
                     cfg.sim_duration_s;
  m.mean_latency_s =
      tally.delivered > 0
          ? tally.latency_acc / static_cast<double>(tally.delivered)
          : 0.0;
  m.tx_per_packet =
      tally.delivered > 0
          ? static_cast<double>(tally.attempts) /
                static_cast<double>(tally.delivered)
          : static_cast<double>(tally.attempts);
  return m;
}

NetMetrics run_aloha(const NetworkConfig& cfg) {
  Rng rng(cfg.seed);
  const double air = lora::frame_airtime_s(cfg.payload_bytes, cfg.phy);
  lora::Demodulator demod(cfg.phy);
  NetTier tier(cfg);

  std::vector<UserState> users(cfg.n_users);
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    users[u].hw = channel::DeviceHardware::sample(cfg.osc, rng);
    users[u].snr_db = user_snr(cfg, u);
    users[u].next_tx_s = rng.uniform(0.0, 2.0 * air);
    users[u].hol_since_s = 0.0;
  }

  Tally tally;
  while (true) {
    // Next transmission starts the episode.
    std::size_t first = 0;
    for (std::size_t u = 1; u < cfg.n_users; ++u) {
      if (users[u].next_tx_s < users[first].next_tx_s) first = u;
    }
    const double t0 = users[first].next_tx_s;
    if (t0 >= cfg.sim_duration_s) break;

    // Greedily absorb every transmission overlapping the episode.
    std::vector<std::size_t> members;
    double ep_end = t0;
    bool grew = true;
    while (grew) {
      grew = false;
      for (std::size_t u = 0; u < cfg.n_users; ++u) {
        if (std::find(members.begin(), members.end(), u) != members.end())
          continue;
        if (users[u].next_tx_s <= std::max(ep_end, t0 + air)) {
          members.push_back(u);
          ep_end = std::max(ep_end, users[u].next_tx_s + air);
          grew = true;
        }
      }
    }

    // Render the episode's IQ superposition.
    std::vector<channel::TxInstance> txs;
    for (std::size_t u : members) {
      channel::TxInstance tx;
      tx.phy = cfg.phy;
      tx.payload = make_payload(u, users[u].seq, cfg.payload_bytes, rng);
      tx.hw = users[u].hw.packet_instance(cfg.osc, rng);
      tx.snr_db = users[u].snr_db;
      tx.fading = cfg.fading;
      tx.extra_delay_s = users[u].next_tx_s - t0;
      txs.push_back(std::move(tx));
    }
    channel::RenderOptions ropt;
    ropt.osc = cfg.osc;
    const channel::RenderedCapture cap = render_collision(txs, ropt, rng);

    // Receiver-lock model: a commodity LoRa gateway has a single
    // demodulation chain per (channel, SF). It locks onto the first
    // detected preamble and stays busy until that frame ends; a later
    // frame is only demodulated if it arrives after the lock releases, or
    // if it is strong enough (>= 6 dB) to capture the chain away.
    tally.attempts += members.size();
    std::vector<std::size_t> order(members.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return users[members[a]].next_tx_s < users[members[b]].next_tx_s;
    });
    double busy_until = -1.0;
    double locked_snr = -300.0;
    std::vector<bool> demodulated(members.size(), false);
    for (std::size_t oi : order) {
      const std::size_t u = members[oi];
      const double tx_start = users[u].next_tx_s;
      if (tx_start < busy_until && users[u].snr_db < locked_snr + 6.0) {
        continue;  // chain busy, no capture
      }
      demodulated[oi] = true;
      busy_until = tx_start + air;
      locked_snr = users[u].snr_db;
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::size_t u = members[i];
      const double frame_end = users[u].next_tx_s + air;
      bool ok = false;
      if (demodulated[i]) {
        const auto start = static_cast<std::size_t>(
            std::llround(cap.users[i].delay_samples));
        const lora::DemodResult res = demod.demodulate_at(cap.samples, start);
        if (res.crc_ok) {
          // The tier validates the decoded DevAddr/FCnt header; a capture
          // that decoded some other member's frame is that member's
          // delivery, not this one's, so require dev == u for credit.
          const auto dev = tier.deliver(res.payload, res.snr_db,
                                        res.offset_bins, res.timing_samples,
                                        frame_end);
          ok = dev.has_value() && *dev == u;
        }
      }
      if (ok) {
        tally.success(frame_end, users[u].hol_since_s);
        users[u].seq++;
        users[u].retries = 0;
        users[u].hol_since_s = frame_end + cfg.turnaround_s;
        users[u].next_tx_s = frame_end + cfg.turnaround_s;
      } else {
        users[u].retries++;
        if (users[u].retries > cfg.max_retries) {
          ++tally.dropped;
          users[u].seq++;
          users[u].retries = 0;
          users[u].hol_since_s = frame_end;
        }
        const double expo =
            std::pow(2.0, std::min(users[u].retries, 8));
        users[u].next_tx_s =
            frame_end + cfg.backoff_base_s * expo * rng.uniform(0.5, 1.5);
      }
    }
  }
  return finish(cfg, tally, tier.stats());
}

NetMetrics run_oracle(const NetworkConfig& cfg) {
  Rng rng(cfg.seed);
  const double air = lora::frame_airtime_s(cfg.payload_bytes, cfg.phy);
  const double slot = air + cfg.turnaround_s;
  lora::Demodulator demod(cfg.phy);
  NetTier tier(cfg);

  std::vector<UserState> users(cfg.n_users);
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    users[u].hw = channel::DeviceHardware::sample(cfg.osc, rng);
    users[u].snr_db = user_snr(cfg, u);
  }

  Tally tally;
  std::size_t slot_idx = 0;
  for (double t = 0.0; t + air <= cfg.sim_duration_s; t += slot, ++slot_idx) {
    const std::size_t u = slot_idx % cfg.n_users;
    channel::TxInstance tx;
    tx.phy = cfg.phy;
    tx.payload = make_payload(u, users[u].seq, cfg.payload_bytes, rng);
    tx.hw = users[u].hw.packet_instance(cfg.osc, rng);
    tx.snr_db = users[u].snr_db;
    tx.fading = cfg.fading;
    channel::RenderOptions ropt;
    ropt.osc = cfg.osc;
    const channel::RenderedCapture cap = render_collision({tx}, ropt, rng);

    ++tally.attempts;
    const auto start =
        static_cast<std::size_t>(std::llround(cap.users[0].delay_samples));
    const lora::DemodResult res = demod.demodulate_at(cap.samples, start);
    bool ok = false;
    if (res.crc_ok) {
      const auto dev = tier.deliver(res.payload, res.snr_db, res.offset_bins,
                                    res.timing_samples, t + air);
      ok = dev.has_value() && *dev == u;
    }
    if (ok) {
      tally.success(t + air, users[u].hol_since_s);
      users[u].seq++;
      users[u].hol_since_s = t + air;
    }
    // Failed slots simply retry at the user's next turn.
  }
  return finish(cfg, tally, tier.stats());
}

NetMetrics run_choir(const NetworkConfig& cfg) {
  Rng rng(cfg.seed);
  const double air = lora::frame_airtime_s(cfg.payload_bytes, cfg.phy);
  const double round_len = air + cfg.choir_guard_s;
  core::CollisionDecoder decoder(cfg.phy);
  NetTier tier(cfg);

  std::vector<UserState> users(cfg.n_users);
  for (std::size_t u = 0; u < cfg.n_users; ++u) {
    users[u].hw = channel::DeviceHardware::sample(cfg.osc, rng);
    users[u].snr_db = user_snr(cfg, u);
  }

  Tally tally;
  for (double t = 0.0; t + air <= cfg.sim_duration_s; t += round_len) {
    // Saturated: every user answers the beacon each round.
    std::vector<channel::TxInstance> txs;
    for (std::size_t u = 0; u < cfg.n_users; ++u) {
      channel::TxInstance tx;
      tx.phy = cfg.phy;
      tx.payload = make_payload(u, users[u].seq, cfg.payload_bytes, rng);
      tx.hw = users[u].hw.packet_instance(cfg.osc, rng);
      tx.snr_db = users[u].snr_db;
      tx.fading = cfg.fading;
      txs.push_back(std::move(tx));
    }
    channel::RenderOptions ropt;
    ropt.osc = cfg.osc;
    const channel::RenderedCapture cap = render_collision(txs, ropt, rng);

    tally.attempts += cfg.n_users;
    const std::vector<core::DecodedUser> decoded =
        decoder.decode(cap.samples, 0);
    // The net tier replaces the old per-round bitmap: duplicate decoder
    // emissions collapse in the dedup window (same payload) or bounce off
    // the FCnt window (same seq, different garbage), so each user is
    // credited at most once per round.
    for (const core::DecodedUser& du : decoded) {
      if (!du.crc_ok) continue;
      const auto dev =
          tier.deliver(du.payload, du.est.snr_db, du.est.cfo_bins,
                       du.est.timing_samples, t + air);
      if (!dev) continue;  // losers retransmit next round
      const std::size_t u = *dev;
      tally.success(t + air, users[u].hol_since_s);
      users[u].seq++;
      users[u].hol_since_s = t + round_len;
    }
  }
  return finish(cfg, tally, tier.stats());
}

}  // namespace

const char* mac_name(MacScheme m) {
  switch (m) {
    case MacScheme::kAloha:
      return "ALOHA";
    case MacScheme::kOracle:
      return "Oracle";
    case MacScheme::kChoir:
      return "Choir";
  }
  return "?";
}

NetMetrics run_network(const NetworkConfig& cfg) {
  check_config(cfg);
  switch (cfg.mac) {
    case MacScheme::kAloha:
      return run_aloha(cfg);
    case MacScheme::kOracle:
      return run_oracle(cfg);
    case MacScheme::kChoir:
      return run_choir(cfg);
  }
  throw std::logic_error("run_network: bad mac");
}

double ideal_throughput_bps(const NetworkConfig& cfg) {
  const double air = lora::frame_airtime_s(cfg.payload_bytes, cfg.phy);
  return static_cast<double>(cfg.n_users) *
         static_cast<double>(cfg.payload_bytes) * 8.0 / air;
}

}  // namespace choir::sim
