// MAC-level network simulator for the density experiments (paper Sec. 9.2,
// Fig 8; also driven by the Fig 11(b) and Fig 12 benches).
//
// Saturated uplink: every node always has a packet pending (the paper's
// "as many as 10 nodes transmitting data at any given time"). Three MACs:
//
//  * ALOHA  — standard LoRaWAN: transmit immediately, exponential backoff
//             after a failed (unacknowledged) attempt.
//  * Oracle — LoRaWAN with a genie TDMA scheduler: perfectly sequenced
//             slots, no collisions ever.
//  * Choir  — beacon rounds: all backlogged nodes answer concurrently in
//             the same slot; the base station disentangles the collision
//             with the CollisionDecoder.
//
// Adjudication renders the actual IQ superposition of every transmission
// cluster ("episode") through the collision channel and runs the real
// receivers — the standard single-user demodulator for the LoRaWAN MACs
// (capture effect included), the Choir decoder for Choir rounds. Every
// CRC-clean decode is then handed to the real network-server tier
// (net::NetServer): the sharded device registry parses the compact
// DevAddr/FCnt header, deduplicates duplicate decoder emissions, and
// enforces the frame-counter replay window. A packet counts as delivered
// only when the net tier accepts it, so attribution is by decoded content
// and server-side validation, never by ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/collision.hpp"
#include "lora/params.hpp"

namespace choir::sim {

enum class MacScheme { kAloha, kOracle, kChoir };

const char* mac_name(MacScheme m);

struct NetworkConfig {
  lora::PhyParams phy{};
  MacScheme mac = MacScheme::kAloha;
  std::size_t n_users = 2;
  double sim_duration_s = 5.0;
  std::size_t payload_bytes = 8;  ///< >= 4 (id + seq header)
  int max_retries = 12;
  double backoff_base_s = 0.01;   ///< ALOHA exponential backoff unit
  double turnaround_s = 0.002;    ///< RX->TX turnaround after success
  double choir_guard_s = 0.004;   ///< per-round guard time
  std::vector<double> user_snr_db;  ///< per-user mean SNR; resized/cycled
  channel::OscillatorModel osc{};
  channel::FadingModel fading{};
  std::uint64_t seed = 1;
};

struct NetMetrics {
  double throughput_bps = 0.0;   ///< delivered payload bits / sim time
  double mean_latency_s = 0.0;   ///< head-of-line to successful decode
  double tx_per_packet = 0.0;    ///< transmissions per delivered packet
  std::size_t delivered = 0;
  std::size_t attempts = 0;
  std::size_t dropped = 0;       ///< packets abandoned after max_retries
  std::size_t dedup_dropped = 0;    ///< duplicate receptions collapsed (net tier)
  std::size_t replay_rejected = 0;  ///< stale/desynced FCnts rejected (net tier)
  double sim_time_s = 0.0;
};

NetMetrics run_network(const NetworkConfig& cfg);

/// Offered-load upper bound: every user streams back-to-back frames decoded
/// perfectly in parallel (the "Ideal" series of Fig 8d).
double ideal_throughput_bps(const NetworkConfig& cfg);

}  // namespace choir::sim
