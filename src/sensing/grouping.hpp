// Sensor grouping strategies and resolution metrics (paper Sec. 9.4, Fig 11a).
//
// When a team of sensors transmits together, the base station recovers the
// bits the team members *agree on* — the common MSB prefix of their
// quantized readings. The reconstruction error per sensor therefore depends
// on how the team was chosen: random teams agree on little; same-floor
// teams agree more; teams at the same distance from the floor center agree
// most (they see the same envelope mix).
#pragma once

#include <cstdint>
#include <vector>

#include "sensing/field.hpp"
#include "util/rng.hpp"

namespace choir::sensing {

enum class GroupingStrategy { kRandom, kByFloor, kByCenterDistance };

const char* grouping_name(GroupingStrategy s);

/// Partitions sensors into groups of (about) `group_size`.
std::vector<std::vector<std::size_t>> make_groups(
    const std::vector<PlacedSensor>& sensors, const SensorField& field,
    GroupingStrategy strategy, std::size_t group_size, Rng& rng);

struct ResolutionParams {
  double lo = 0.0;
  double hi = 1.0;
  int bits = 12;
};

/// Mean absolute reconstruction error, normalized by the sensor range, when
/// each group reports only its common MSB prefix: for each sensor, the
/// reconstructed value is the prefix midpoint; error = |recon - truth|/range.
double grouping_error(const std::vector<double>& readings,
                      const std::vector<std::vector<std::size_t>>& groups,
                      const ResolutionParams& p);

}  // namespace choir::sensing
