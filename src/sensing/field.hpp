// Synthetic environmental field standing in for the paper's BME280
// temperature/humidity sensors deployed across a large university building
// (Sec. 9.4, Figs 6, 10, 11).
//
// The field captures the spatial correlation structure those experiments
// rely on: readings are driven by an outdoor value that leaks through the
// building envelope, so sensors at the same distance from the floor's
// center read almost the same value (the paper found grouping by
// center-distance best, then by floor, then random), plus a per-floor
// gradient and smooth spatial noise.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace choir::sensing {

struct BuildingModel {
  double width_m = 95.0;   ///< Fig 6(a) floor plate
  double depth_m = 40.0;
  int floors = 4;
  double indoor_core_c = 22.0;    ///< HVAC setpoint at the core
  double outdoor_c = 29.0;        ///< summer afternoon
  double floor_gradient_c = 0.5;  ///< heat rises
  double envelope_leak = 0.6;     ///< outdoor fraction felt at the envelope
  double noise_c = 0.25;          ///< smooth spatial noise amplitude
  double indoor_core_rh = 42.0;
  double outdoor_rh = 68.0;
  double noise_rh = 1.5;
};

struct PlacedSensor {
  std::size_t id = 0;
  double x_m = 0.0;  ///< [0, width)
  double y_m = 0.0;  ///< [0, depth)
  int floor = 0;
};

struct SensorSample {
  double temperature_c = 0.0;
  double humidity_rh = 0.0;
};

/// Smooth spatially-correlated field: a sum of random low-frequency cosine
/// plane waves (random Fourier features), giving continuous, differentiable
/// spatial noise with ~unit variance, scaled per field.
class SmoothNoise {
 public:
  SmoothNoise(std::size_t n_waves, double corr_length_m, Rng& rng);
  double at(double x_m, double y_m, double floor) const;

 private:
  struct Wave {
    double kx, ky, kf, phase;
  };
  std::vector<Wave> waves_;
  double norm_ = 1.0;
};

class SensorField {
 public:
  SensorField(const BuildingModel& model, std::uint64_t seed);

  const BuildingModel& model() const { return model_; }

  /// Normalized distance from the floor-plate center, 0 at center, 1 at the
  /// envelope (corner-normalized).
  double center_distance(const PlacedSensor& s) const;

  SensorSample sample(const PlacedSensor& s) const;

 private:
  BuildingModel model_;
  SmoothNoise temp_noise_;
  SmoothNoise hum_noise_;
};

/// Uniformly places `count` sensors across the building's floors.
std::vector<PlacedSensor> place_sensors(const BuildingModel& model,
                                        std::size_t count, Rng& rng);

/// Quantizes a reading to `bits` bits over [lo, hi] (sensor ADC model).
std::uint32_t quantize_reading(double value, double lo, double hi, int bits);

/// Midpoint reconstruction of a quantized reading.
double dequantize_reading(std::uint32_t q, double lo, double hi, int bits);

/// Longest common MSB prefix of a set of quantized readings; returns the
/// number of shared leading bits.
int common_msb_prefix(const std::vector<std::uint32_t>& values, int bits);

/// Reconstructs a value from the first `prefix_bits` MSBs (midpoint of the
/// remaining range) — what the base station learns from a team transmission
/// that carries only the overlapping bits.
double reconstruct_from_prefix(std::uint32_t value, int prefix_bits, double lo,
                               double hi, int bits);

/// Robust shared reading for a team: tightly-clustered values can still
/// straddle a quantization cell boundary, which destroys the common MSB
/// prefix entirely. The team can agree (via the beacon) on one of a few
/// dither offsets of the quantization grid; this helper picks the offset
/// that maximizes the shared prefix and returns the reconstructed value.
struct SharedReading {
  int prefix_bits = 0;
  double value = 0.0;       ///< reconstruction (midpoint of the shared cell)
  double dither = 0.0;      ///< grid offset that was used
};
SharedReading team_shared_reading(const std::vector<double>& values, double lo,
                                  double hi, int bits);

}  // namespace choir::sensing
