#include "sensing/grouping.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace choir::sensing {

const char* grouping_name(GroupingStrategy s) {
  switch (s) {
    case GroupingStrategy::kRandom:
      return "Random";
    case GroupingStrategy::kByFloor:
      return "Floor";
    case GroupingStrategy::kByCenterDistance:
      return "Center Dist.";
  }
  return "?";
}

std::vector<std::vector<std::size_t>> make_groups(
    const std::vector<PlacedSensor>& sensors, const SensorField& field,
    GroupingStrategy strategy, std::size_t group_size, Rng& rng) {
  if (group_size == 0) throw std::invalid_argument("make_groups: size 0");
  std::vector<std::size_t> order(sensors.size());
  std::iota(order.begin(), order.end(), 0);

  switch (strategy) {
    case GroupingStrategy::kRandom:
      std::shuffle(order.begin(), order.end(), rng.engine());
      break;
    case GroupingStrategy::kByFloor:
      // Within a floor, order is arbitrary (shuffled) — the strategy only
      // uses floor membership.
      std::shuffle(order.begin(), order.end(), rng.engine());
      std::stable_sort(order.begin(), order.end(),
                       [&](std::size_t a, std::size_t b) {
                         return sensors[a].floor < sensors[b].floor;
                       });
      break;
    case GroupingStrategy::kByCenterDistance:
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return field.center_distance(sensors[a]) <
               field.center_distance(sensors[b]);
      });
      break;
  }

  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < order.size(); i += group_size) {
    const std::size_t end = std::min(order.size(), i + group_size);
    groups.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(i),
                        order.begin() + static_cast<std::ptrdiff_t>(end));
  }
  return groups;
}

double grouping_error(const std::vector<double>& readings,
                      const std::vector<std::vector<std::size_t>>& groups,
                      const ResolutionParams& p) {
  if (p.hi <= p.lo) throw std::invalid_argument("grouping_error: range");
  double err_acc = 0.0;
  std::size_t count = 0;
  for (const auto& g : groups) {
    std::vector<std::uint32_t> quantized;
    quantized.reserve(g.size());
    for (std::size_t idx : g) {
      quantized.push_back(quantize_reading(readings.at(idx), p.lo, p.hi, p.bits));
    }
    const int prefix = common_msb_prefix(quantized, p.bits);
    for (std::size_t k = 0; k < g.size(); ++k) {
      const double recon =
          reconstruct_from_prefix(quantized[k], prefix, p.lo, p.hi, p.bits);
      err_acc += std::abs(recon - readings[g[k]]) / (p.hi - p.lo);
      ++count;
    }
  }
  return count > 0 ? err_acc / static_cast<double>(count) : 0.0;
}

}  // namespace choir::sensing
