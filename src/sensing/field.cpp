#include "sensing/field.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/types.hpp"

namespace choir::sensing {

namespace {

SmoothNoise make_noise(std::uint64_t seed, std::uint64_t salt) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull + salt);
  return SmoothNoise(24, 25.0, rng);
}

}  // namespace

SmoothNoise::SmoothNoise(std::size_t n_waves, double corr_length_m, Rng& rng) {
  if (corr_length_m <= 0.0)
    throw std::invalid_argument("SmoothNoise: corr_length");
  waves_.reserve(n_waves);
  for (std::size_t i = 0; i < n_waves; ++i) {
    const double k = kTwoPi / corr_length_m;
    const double theta = rng.phase();
    Wave w;
    w.kx = k * std::cos(theta) * rng.uniform(0.3, 1.0);
    w.ky = k * std::sin(theta) * rng.uniform(0.3, 1.0);
    w.kf = rng.uniform(0.0, kTwoPi / 3.0);  // mild floor decorrelation
    w.phase = rng.phase();
    waves_.push_back(w);
  }
  norm_ = std::sqrt(2.0 / static_cast<double>(std::max<std::size_t>(1, n_waves)));
}

double SmoothNoise::at(double x_m, double y_m, double floor) const {
  double acc = 0.0;
  for (const Wave& w : waves_) {
    acc += std::cos(w.kx * x_m + w.ky * y_m + w.kf * floor + w.phase);
  }
  return acc * norm_;
}

SensorField::SensorField(const BuildingModel& model, std::uint64_t seed)
    : model_(model),
      temp_noise_(make_noise(seed, 1)),
      hum_noise_(make_noise(seed, 2)) {}

double SensorField::center_distance(const PlacedSensor& s) const {
  const double cx = model_.width_m / 2.0;
  const double cy = model_.depth_m / 2.0;
  const double dx = (s.x_m - cx) / cx;
  const double dy = (s.y_m - cy) / cy;
  return std::min(1.0, std::sqrt((dx * dx + dy * dy) / 2.0));
}

SensorSample SensorField::sample(const PlacedSensor& s) const {
  // The envelope mixes the outdoor value in; the core holds the setpoint.
  const double mix = model_.envelope_leak * center_distance(s);
  SensorSample out;
  out.temperature_c =
      model_.indoor_core_c * (1.0 - mix) + model_.outdoor_c * mix +
      model_.floor_gradient_c * static_cast<double>(s.floor) +
      model_.noise_c * temp_noise_.at(s.x_m, s.y_m, s.floor);
  out.humidity_rh =
      model_.indoor_core_rh * (1.0 - mix) + model_.outdoor_rh * mix +
      model_.noise_rh * hum_noise_.at(s.x_m, s.y_m, s.floor);
  return out;
}

std::vector<PlacedSensor> place_sensors(const BuildingModel& model,
                                        std::size_t count, Rng& rng) {
  std::vector<PlacedSensor> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    PlacedSensor s;
    s.id = i;
    s.x_m = rng.uniform(0.0, model.width_m);
    s.y_m = rng.uniform(0.0, model.depth_m);
    s.floor = static_cast<int>(rng.uniform_int(0, model.floors - 1));
    out.push_back(s);
  }
  return out;
}

std::uint32_t quantize_reading(double value, double lo, double hi, int bits) {
  if (bits < 1 || bits > 31) throw std::invalid_argument("quantize: bits");
  if (hi <= lo) throw std::invalid_argument("quantize: range");
  const double levels = static_cast<double>(std::uint32_t{1} << bits);
  double t = (value - lo) / (hi - lo) * levels;
  t = std::clamp(t, 0.0, levels - 1.0);
  return static_cast<std::uint32_t>(t);
}

double dequantize_reading(std::uint32_t q, double lo, double hi, int bits) {
  const double levels = static_cast<double>(std::uint32_t{1} << bits);
  return lo + (static_cast<double>(q) + 0.5) / levels * (hi - lo);
}

int common_msb_prefix(const std::vector<std::uint32_t>& values, int bits) {
  if (values.empty()) return 0;
  for (int p = bits; p > 0; --p) {
    const int shift = bits - p;
    const std::uint32_t head = values.front() >> shift;
    bool all = true;
    for (std::uint32_t v : values) {
      if ((v >> shift) != head) {
        all = false;
        break;
      }
    }
    if (all) return p;
  }
  return 0;
}

double reconstruct_from_prefix(std::uint32_t value, int prefix_bits, double lo,
                               double hi, int bits) {
  if (prefix_bits < 0 || prefix_bits > bits)
    throw std::invalid_argument("reconstruct_from_prefix: prefix_bits");
  const int shift = bits - prefix_bits;
  const std::uint32_t head = (value >> shift) << shift;
  // Midpoint of the interval the prefix pins down.
  const std::uint32_t mid =
      head + (shift > 0 ? (std::uint32_t{1} << (shift - 1)) : 0);
  return dequantize_reading(mid, lo, hi, bits) -
         (0.5 / static_cast<double>(std::uint32_t{1} << bits)) * (hi - lo);
}

SharedReading team_shared_reading(const std::vector<double>& values,
                                  double lo, double hi, int bits) {
  if (values.empty()) throw std::invalid_argument("team_shared_reading: empty");
  // Search from the longest prefix down. At prefix length p the shared
  // "cell" spans (hi-lo)/2^p; tightly clustered readings fit one cell
  // unless a boundary happens to cut through them — which a small agreed
  // grid offset (quarter-cell granularity, indexable in two bits of the
  // beacon) repairs.
  SharedReading best;
  for (int p = bits; p >= 0; --p) {
    const double cell =
        (hi - lo) / static_cast<double>(std::uint32_t{1} << p);
    for (double frac : {0.0, 0.25, 0.5, 0.75}) {
      const double dither = frac * cell;
      bool agree = true;
      double first_idx = 0.0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        const double idx = std::floor((values[i] - lo + dither) / cell);
        if (i == 0) {
          first_idx = idx;
        } else if (idx != first_idx) {
          agree = false;
          break;
        }
      }
      if (agree) {
        best.prefix_bits = p;
        best.dither = dither;
        best.value = lo - dither + (first_idx + 0.5) * cell;
        return best;
      }
    }
  }
  return best;  // unreachable: p == 0 always agrees
}

}  // namespace choir::sensing
