// Golden-section search for one-dimensional minimization.
//
// Choir's residual function R(f1..fk) is locally convex around the coarse
// FFT-peak estimates (paper Fig. 4), so a derivative-free bracketing search
// per coordinate converges quickly and robustly in the presence of noise.
#pragma once

#include <functional>

namespace choir::opt {

struct GoldenResult {
  double x = 0.0;
  double fx = 0.0;
  int evaluations = 0;
};

/// Minimizes f over [lo, hi] to within `tol` on x.
GoldenResult golden_section_minimize(const std::function<double(double)>& f,
                                     double lo, double hi, double tol = 1e-6,
                                     int max_iter = 200);

}  // namespace choir::opt
