// Cyclic coordinate descent with golden-section line searches.
//
// Used to minimize the multi-user residual R(f1..fk): each user's offset is
// refined in turn within a trust region around its current estimate, cycling
// until the objective stops improving. Supports multi-start from randomly
// jittered initial points (the "stochastic descent" of paper Sec. 5.1).
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace choir::opt {

struct CoordinateDescentOptions {
  double radius = 0.5;      ///< per-coordinate search half-width
  double tol = 1e-4;        ///< line-search x tolerance
  int max_cycles = 12;      ///< full passes over all coordinates
  double min_improvement = 1e-9;  ///< stop when a cycle improves less
};

struct CoordinateDescentResult {
  std::vector<double> x;
  double fx = 0.0;
  int cycles = 0;
  int evaluations = 0;
};

using ObjectiveFn = std::function<double(const std::vector<double>&)>;

/// Minimizes f starting from x0, searching coordinate i within
/// [x0_i - radius, x0_i + radius] each cycle (trust region follows the
/// current iterate).
CoordinateDescentResult coordinate_descent(const ObjectiveFn& f,
                                           std::vector<double> x0,
                                           const CoordinateDescentOptions& opt);

/// Multi-start wrapper: runs coordinate_descent from `starts` randomly
/// jittered copies of x0 (jitter uniform in +-jitter per coordinate) and
/// returns the best result. With starts == 1 this is plain descent from x0.
CoordinateDescentResult multi_start_descent(const ObjectiveFn& f,
                                            const std::vector<double>& x0,
                                            const CoordinateDescentOptions& opt,
                                            int starts, double jitter,
                                            Rng& rng);

}  // namespace choir::opt
