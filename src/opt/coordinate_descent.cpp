#include "opt/coordinate_descent.hpp"

#include <stdexcept>

#include "opt/golden.hpp"

namespace choir::opt {

CoordinateDescentResult coordinate_descent(const ObjectiveFn& f,
                                           std::vector<double> x0,
                                           const CoordinateDescentOptions& opt) {
  if (x0.empty()) throw std::invalid_argument("coordinate_descent: empty x0");
  CoordinateDescentResult res;
  res.x = std::move(x0);
  res.fx = f(res.x);
  ++res.evaluations;
  for (int cycle = 0; cycle < opt.max_cycles; ++cycle) {
    const double before = res.fx;
    for (std::size_t i = 0; i < res.x.size(); ++i) {
      const double center = res.x[i];
      auto line = [&](double v) {
        std::vector<double> probe = res.x;
        probe[i] = v;
        return f(probe);
      };
      const GoldenResult g = golden_section_minimize(
          line, center - opt.radius, center + opt.radius, opt.tol);
      res.evaluations += g.evaluations;
      if (g.fx < res.fx) {
        res.x[i] = g.x;
        res.fx = g.fx;
      }
    }
    ++res.cycles;
    if (before - res.fx < opt.min_improvement) break;
  }
  return res;
}

CoordinateDescentResult multi_start_descent(const ObjectiveFn& f,
                                            const std::vector<double>& x0,
                                            const CoordinateDescentOptions& opt,
                                            int starts, double jitter,
                                            Rng& rng) {
  if (starts < 1) throw std::invalid_argument("multi_start_descent: starts");
  CoordinateDescentResult best;
  bool have_best = false;
  for (int s = 0; s < starts; ++s) {
    std::vector<double> start = x0;
    if (s > 0) {
      for (auto& v : start) v += rng.uniform(-jitter, jitter);
    }
    CoordinateDescentResult r = coordinate_descent(f, std::move(start), opt);
    if (!have_best || r.fx < best.fx) {
      best = std::move(r);
      have_best = true;
    }
  }
  return best;
}

}  // namespace choir::opt
