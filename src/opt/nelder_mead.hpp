// Nelder-Mead downhill simplex minimizer.
//
// Used as an alternative joint refiner for the offset residual when the
// number of colliding users is small; also exercised by the ablation bench
// comparing refinement strategies.
#pragma once

#include <functional>
#include <vector>

namespace choir::opt {

struct NelderMeadOptions {
  double initial_step = 0.25;
  double tol = 1e-8;       ///< stop when simplex f-spread falls below this
  int max_iterations = 500;
};

struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  int evaluations = 0;
};

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opt);

}  // namespace choir::opt
