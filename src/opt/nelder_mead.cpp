#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace choir::opt {

NelderMeadResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, const NelderMeadOptions& opt) {
  const std::size_t n = x0.size();
  if (n == 0) throw std::invalid_argument("nelder_mead: empty x0");

  NelderMeadResult res;
  // Simplex of n+1 vertices.
  std::vector<std::vector<double>> verts(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) verts[i + 1][i] += opt.initial_step;
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    fv[i] = f(verts[i]);
    ++res.evaluations;
  }

  constexpr double kAlpha = 1.0;  // reflection
  constexpr double kGamma = 2.0;  // expansion
  constexpr double kRho = 0.5;    // contraction
  constexpr double kSigma = 0.5;  // shrink

  for (int it = 0; it < opt.max_iterations; ++it) {
    // Order vertices by objective.
    std::vector<std::size_t> order(n + 1);
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order.front(), worst = order.back();
    res.iterations = it + 1;
    if (fv[worst] - fv[best] < opt.tol) break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += verts[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> p(n);
      for (std::size_t d = 0; d < n; ++d)
        p[d] = centroid[d] + coef * (centroid[d] - verts[worst][d]);
      return p;
    };

    std::vector<double> reflected = blend(kAlpha);
    const double fr = f(reflected);
    ++res.evaluations;
    const std::size_t second_worst = order[n - 1];
    if (fr < fv[best]) {
      std::vector<double> expanded = blend(kGamma);
      const double fe = f(expanded);
      ++res.evaluations;
      if (fe < fr) {
        verts[worst] = std::move(expanded);
        fv[worst] = fe;
      } else {
        verts[worst] = std::move(reflected);
        fv[worst] = fr;
      }
    } else if (fr < fv[second_worst]) {
      verts[worst] = std::move(reflected);
      fv[worst] = fr;
    } else {
      std::vector<double> contracted = blend(-kRho);
      const double fc = f(contracted);
      ++res.evaluations;
      if (fc < fv[worst]) {
        verts[worst] = std::move(contracted);
        fv[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t d = 0; d < n; ++d) {
            verts[i][d] = verts[best][d] +
                          kSigma * (verts[i][d] - verts[best][d]);
          }
          fv[i] = f(verts[i]);
          ++res.evaluations;
        }
      }
    }
  }

  const auto best_it = std::min_element(fv.begin(), fv.end());
  const std::size_t best_idx =
      static_cast<std::size_t>(std::distance(fv.begin(), best_it));
  res.x = verts[best_idx];
  res.fx = fv[best_idx];
  return res;
}

}  // namespace choir::opt
