#include "opt/golden.hpp"

#include <cmath>
#include <stdexcept>

namespace choir::opt {

GoldenResult golden_section_minimize(const std::function<double(double)>& f,
                                     double lo, double hi, double tol,
                                     int max_iter) {
  if (!(lo <= hi)) throw std::invalid_argument("golden: lo > hi");
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  GoldenResult res;
  double a = lo, b = hi;
  double c = b - kInvPhi * (b - a);
  double d = a + kInvPhi * (b - a);
  double fc = f(c), fd = f(d);
  res.evaluations = 2;
  for (int i = 0; i < max_iter && (b - a) > tol; ++i) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - kInvPhi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + kInvPhi * (b - a);
      fd = f(d);
    }
    ++res.evaluations;
  }
  if (fc < fd) {
    res.x = c;
    res.fx = fc;
  } else {
    res.x = d;
    res.fx = fd;
  }
  return res;
}

}  // namespace choir::opt
