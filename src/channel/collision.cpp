#include "channel/collision.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "channel/pathloss.hpp"

namespace choir::channel {

RenderedCapture render_collision(const std::vector<TxInstance>& txs,
                                 const RenderOptions& opt, Rng& rng) {
  if (txs.empty()) throw std::invalid_argument("render_collision: no txs");
  const double fs = txs.front().phy.sample_rate_hz();
  for (const auto& tx : txs) {
    if (tx.phy.sample_rate_hz() != fs)
      throw std::invalid_argument("render_collision: mixed sample rates");
  }

  RenderedCapture cap;
  cap.sample_rate_hz = fs;

  // First pass: synthesize each user's waveform and find the capture length.
  std::vector<cvec> waves;
  waves.reserve(txs.size());
  std::size_t total_len = 0;
  for (const auto& tx : txs) {
    const double delay_samples =
        (tx.extra_delay_s + tx.hw.timing_offset_s) * fs;
    if (delay_samples < 0.0)
      throw std::invalid_argument("render_collision: negative delay");
    lora::Modulator mod(tx.phy);
    cvec wave = mod.synthesize(tx.payload, delay_samples);

    RenderedUser ru;
    ru.delay_samples = delay_samples;
    ru.cfo_hz = tx.hw.cfo_hz;
    ru.phase = tx.hw.phase;
    ru.amplitude = snr_db_to_amplitude(tx.snr_db);
    ru.fading = sample_fading(tx.fading, rng);
    ru.first_sample = static_cast<std::size_t>(std::floor(delay_samples));
    const double bin_hz = tx.phy.bin_width_hz();
    const double n = static_cast<double>(tx.phy.chips());
    double agg = tx.hw.cfo_hz / bin_hz - delay_samples;
    agg = std::fmod(std::fmod(agg, n) + n, n);
    ru.aggregate_offset_bins = agg;

    apply_cfo(wave, tx.hw.cfo_hz, tx.hw.phase, fs,
              opt.osc.cfo_drift_hz_per_symbol, tx.phy.chips(), rng);
    const cplx gain = ru.amplitude * ru.fading;
    for (auto& s : wave) s *= gain;

    total_len = std::max(total_len, wave.size());
    waves.push_back(std::move(wave));
    cap.users.push_back(ru);
  }
  total_len += static_cast<std::size_t>(opt.tail_s * fs);

  cap.samples.assign(total_len, cplx{0.0, 0.0});
  for (const cvec& w : waves) {
    for (std::size_t i = 0; i < w.size(); ++i) cap.samples[i] += w[i];
  }
  if (opt.add_noise) {
    for (auto& s : cap.samples) s += rng.cgaussian(1.0);
  }
  if (opt.adc) {
    quantize(cap.samples, *opt.adc);
  }
  return cap;
}

}  // namespace choir::channel
