// Analog-to-digital conversion model.
//
// The paper notes Choir is "always limited by the resolution of the
// analog-to-digital converter": transmitters below the ADC's quantization
// floor are lost no matter what the decoder does (Sec. 5.2). This module
// models a uniform mid-rise quantizer with clipping, applied after AGC
// normalization to the strongest in-band signal.
#pragma once

#include <cstddef>

#include "util/types.hpp"

namespace choir::channel {

struct AdcModel {
  int bits = 12;            ///< bits per I/Q rail (USRP N210: 14; we default
                            ///< lower to model a cheap gateway front end)
  double full_scale = 0.0;  ///< clip level; 0 = auto (AGC to peak amplitude)
};

/// Quantizes a capture in place. Returns the LSB step used.
double quantize(cvec& samples, const AdcModel& model);

}  // namespace choir::channel
