// Hardware-imperfection model for low-cost LP-WAN client radios.
//
// Choir's entire receiver rests on two empirical properties of cheap LoRa
// hardware (paper Sec. 9.1, Fig 7):
//  (1) carrier-frequency offsets and sub-symbol timing offsets are *diverse*
//      across devices — approximately uniform over their range, and
//  (2) they are *stable* within one packet (~10 ms): measured relative error
//      about 0.04% for CFO+TO and 1.84% for TO.
// This module samples per-device offsets with exactly those two properties
// and models the small intra-packet drift.
#pragma once

#include "util/rng.hpp"
#include "util/types.hpp"

namespace choir::channel {

struct OscillatorModel {
  /// CFO drawn uniformly in [-max_cfo_hz, +max_cfo_hz]. Relative offsets
  /// between same-batch crystals are small compared to the LoRa bandwidth
  /// but span several FFT bins — the regime Fig 7(b) reports.
  double max_cfo_hz = 4000.0;
  /// Sub-symbol timing offset (seconds) drawn uniformly in [0, max].
  /// Beacon-coordinated responders stay well under one symbol (Sec. 7.1);
  /// the paper's Fig 7(c) measures relative offsets of a few tens of
  /// microseconds against ~10 ms symbols. At 125 kHz sampling the default
  /// spans 0..5 samples — a fraction of a percent of an SF10+ symbol.
  double max_timing_offset_s = 4e-5;
  /// Std-dev of the slow CFO random walk, in Hz per symbol. Default keeps
  /// intra-packet drift at the sub-0.1% level Fig 7(d) measures.
  double cfo_drift_hz_per_symbol = 0.25;
  /// Std-dev of per-packet timing jitter relative to the nominal offset,
  /// in seconds (clock granularity of the MCU scheduling the response).
  double timing_jitter_s = 2e-6;
};

/// The sampled imperfections of one physical device. The per-device values
/// persist across packets (they are properties of the crystal); per-packet
/// jitter is added at transmission time.
struct DeviceHardware {
  double cfo_hz = 0.0;
  double timing_offset_s = 0.0;
  double phase = 0.0;  ///< carrier phase offset, uniform [0, 2*pi)

  static DeviceHardware sample(const OscillatorModel& model, Rng& rng);

  /// Per-packet realization: nominal values plus jitter/drift start point.
  DeviceHardware packet_instance(const OscillatorModel& model, Rng& rng) const;

  /// Aggregate offset in FFT bins: a timing offset of one sample shifts the
  /// dechirped tone by exactly one bin (chirp time-frequency duality,
  /// Eqn 5), so the aggregate is cfo/bin_width - timing_in_samples. This is
  /// the quantity Fig 7(a) characterizes and the receiver estimates.
  double aggregate_offset_bins(double bin_hz, double sample_rate_hz) const {
    return cfo_hz / bin_hz - timing_offset_s * sample_rate_hz;
  }
};

/// Applies a (possibly drifting) carrier frequency offset and phase to a
/// waveform in place. Drift is a Gaussian random walk on the instantaneous
/// frequency, stepped once per `samples_per_symbol` samples.
void apply_cfo(cvec& samples, double cfo_hz, double phase,
               double sample_rate_hz, double drift_hz_per_symbol,
               std::size_t samples_per_symbol, Rng& rng);

/// Convenience overload without drift.
void apply_cfo(cvec& samples, double cfo_hz, double phase,
               double sample_rate_hz);

}  // namespace choir::channel
