#include "channel/adc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace choir::channel {

double quantize(cvec& samples, const AdcModel& model) {
  if (model.bits < 2 || model.bits > 24)
    throw std::invalid_argument("quantize: bits");
  double fs = model.full_scale;
  if (fs <= 0.0) {
    for (const cplx& s : samples) {
      fs = std::max({fs, std::abs(s.real()), std::abs(s.imag())});
    }
    if (fs <= 0.0) return 0.0;
  }
  const double levels = static_cast<double>(std::size_t{1} << (model.bits - 1));
  const double step = fs / levels;
  auto q = [&](double v) {
    const double clipped = std::clamp(v, -fs, fs - step);
    return (std::floor(clipped / step) + 0.5) * step;
  };
  for (cplx& s : samples) s = {q(s.real()), q(s.imag())};
  return step;
}

}  // namespace choir::channel
