#include "channel/fading.hpp"

#include <cmath>

#include "util/db.hpp"

namespace choir::channel {

cplx sample_fading(const FadingModel& model, Rng& rng) {
  switch (model.kind) {
    case FadingKind::kNone:
      return {1.0, 0.0};
    case FadingKind::kRayleigh:
      return rng.cgaussian(1.0);
    case FadingKind::kRician: {
      const double k = db_to_linear(model.rician_k_db);
      const cplx scattered = rng.cgaussian(1.0 / (k + 1.0));
      const double los_amp = std::sqrt(k / (k + 1.0));
      return cplx{los_amp, 0.0} * cis(rng.phase()) + scattered;
    }
  }
  return {1.0, 0.0};
}

}  // namespace choir::channel
