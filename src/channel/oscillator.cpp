#include "channel/oscillator.hpp"

#include <cmath>

namespace choir::channel {

DeviceHardware DeviceHardware::sample(const OscillatorModel& model, Rng& rng) {
  DeviceHardware hw;
  hw.cfo_hz = rng.uniform(-model.max_cfo_hz, model.max_cfo_hz);
  hw.timing_offset_s = rng.uniform(0.0, model.max_timing_offset_s);
  hw.phase = rng.phase();
  return hw;
}

DeviceHardware DeviceHardware::packet_instance(const OscillatorModel& model,
                                               Rng& rng) const {
  DeviceHardware hw = *this;
  hw.timing_offset_s += rng.gaussian(model.timing_jitter_s);
  if (hw.timing_offset_s < 0.0) hw.timing_offset_s = 0.0;
  hw.phase = rng.phase();  // carrier phase is arbitrary per packet
  return hw;
}

void apply_cfo(cvec& samples, double cfo_hz, double phase,
               double sample_rate_hz, double drift_hz_per_symbol,
               std::size_t samples_per_symbol, Rng& rng) {
  double freq = cfo_hz;
  double acc = phase;  // accumulated phase, radians
  const double dt = 1.0 / sample_rate_hz;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (drift_hz_per_symbol > 0.0 && samples_per_symbol > 0 &&
        i % samples_per_symbol == 0 && i != 0) {
      freq += rng.gaussian(drift_hz_per_symbol);
    }
    samples[i] *= cis(acc);
    acc += kTwoPi * freq * dt;
  }
}

void apply_cfo(cvec& samples, double cfo_hz, double phase,
               double sample_rate_hz) {
  Rng dummy(0);
  apply_cfo(samples, cfo_hz, phase, sample_rate_hz, 0.0, 0, dummy);
}

}  // namespace choir::channel
