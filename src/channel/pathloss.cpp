#include "channel/pathloss.hpp"

#include <cmath>
#include <stdexcept>

#include "util/db.hpp"

namespace choir::channel {

double UrbanPathLoss::median_loss_db(double distance_m) const {
  if (distance_m < 1.0) distance_m = 1.0;
  return reference_loss_db + 10.0 * exponent * std::log10(distance_m);
}

double UrbanPathLoss::sample_loss_db(double distance_m, Rng& rng) const {
  return median_loss_db(distance_m) + rng.gaussian(shadowing_std_db);
}

double LinkBudget::noise_dbm() const {
  return -174.0 + 10.0 * std::log10(bandwidth_hz) + noise_figure_db;
}

double LinkBudget::median_snr_db(double distance_m,
                                 const UrbanPathLoss& pl) const {
  return tx_power_dbm - pl.median_loss_db(distance_m) - noise_dbm();
}

double LinkBudget::sample_snr_db(double distance_m, const UrbanPathLoss& pl,
                                 Rng& rng) const {
  return tx_power_dbm - pl.sample_loss_db(distance_m, rng) - noise_dbm();
}

double snr_db_to_amplitude(double snr_db) {
  return db_to_amplitude(snr_db);
}

double lora_demod_floor_snr_db(int sf) {
  if (sf < 6 || sf > 12) throw std::invalid_argument("demod floor: sf");
  // SF7 -> -7.5 dB ... SF12 -> -20 dB, 2.5 dB per step.
  return -7.5 - 2.5 * static_cast<double>(sf - 7);
}

}  // namespace choir::channel
