// Small-scale fading: per-packet flat fading coefficients.
//
// LoRa symbols are long (ms) and narrowband, so within one packet the
// channel is well modelled as a single complex coefficient per link
// (flat, block fading). Urban NLOS links draw Rayleigh; links with a
// dominant path draw Rician with configurable K-factor.
#pragma once

#include "util/rng.hpp"
#include "util/types.hpp"

namespace choir::channel {

enum class FadingKind { kNone, kRayleigh, kRician };

struct FadingModel {
  FadingKind kind = FadingKind::kRayleigh;
  double rician_k_db = 6.0;  ///< dominant-to-scattered power ratio
};

/// Draws a unit-mean-power complex fading coefficient.
cplx sample_fading(const FadingModel& model, Rng& rng);

}  // namespace choir::channel
