// Collision channel: renders the superposition of several LoRa
// transmissions — each with its own hardware offsets, link gain and fading —
// into one complex-baseband capture at the base station, plus AWGN and an
// optional ADC stage. This is the synthetic stand-in for the USRP N210
// front end of the paper's testbed.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "channel/adc.hpp"
#include "channel/fading.hpp"
#include "channel/oscillator.hpp"
#include "lora/modulator.hpp"
#include "lora/params.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace choir::channel {

/// One scheduled transmission entering the channel.
struct TxInstance {
  lora::PhyParams phy;
  std::vector<std::uint8_t> payload;
  DeviceHardware hw;        ///< per-packet hardware realization
  double snr_db = 20.0;     ///< mean per-sample SNR at the receiver
  FadingModel fading{};     ///< small-scale fading model for this link
  double extra_delay_s = 0.0;  ///< MAC-level start offset within the capture
};

/// Ground truth for one rendered transmission (consumed by tests/benches).
struct RenderedUser {
  double delay_samples = 0.0;   ///< total fractional start delay
  double cfo_hz = 0.0;
  double amplitude = 0.0;       ///< mean amplitude (pre-fading), noise = 1
  cplx fading{1.0, 0.0};
  double phase = 0.0;
  /// Aggregate offset in bins the receiver should observe:
  /// cfo/bin_width - delay_in_samples (mod N).
  double aggregate_offset_bins = 0.0;
  std::size_t first_sample = 0;  ///< integer sample index where energy starts
};

struct RenderedCapture {
  cvec samples;
  std::vector<RenderedUser> users;
  double sample_rate_hz = 0.0;
};

struct RenderOptions {
  OscillatorModel osc{};
  bool add_noise = true;       ///< unit-variance complex AWGN
  double tail_s = 0.0;         ///< extra silence after the last frame
  std::optional<AdcModel> adc; ///< quantize the capture if set
};

/// Renders all transmissions into one capture. All TxInstances must share
/// the same sample rate (bandwidth).
RenderedCapture render_collision(const std::vector<TxInstance>& txs,
                                 const RenderOptions& opt, Rng& rng);

}  // namespace choir::channel
