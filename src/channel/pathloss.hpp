// Urban propagation: log-distance path loss with shadowing, and the link
// budget that converts distance to receiver SNR.
//
// The constants are calibrated so that a 14 dBm LoRa client at SF12/125 kHz
// reaches about 1 km in the urban model — matching the paper's observation
// that individual clients were decodable no further than ~1 km around CMU
// campus (Sec. 9.3).
#pragma once

#include "util/rng.hpp"

namespace choir::channel {

struct UrbanPathLoss {
  double reference_loss_db = 40.0;  ///< loss at d0 = 1 m, ~900 MHz
  double exponent = 3.8;            ///< dense-urban slope
  double shadowing_std_db = 6.0;    ///< log-normal shadowing

  /// Deterministic (median) path loss at `distance_m` >= 1.
  double median_loss_db(double distance_m) const;

  /// Path loss with a shadowing draw.
  double sample_loss_db(double distance_m, Rng& rng) const;
};

struct LinkBudget {
  double tx_power_dbm = 14.0;   ///< LoRa client EIRP (few tens of mW)
  double noise_figure_db = 6.0; ///< receiver front end
  double bandwidth_hz = 125e3;

  /// Thermal noise power in the channel bandwidth.
  double noise_dbm() const;

  /// Median receiver SNR at a distance.
  double median_snr_db(double distance_m, const UrbanPathLoss& pl) const;

  /// SNR with a shadowing draw.
  double sample_snr_db(double distance_m, const UrbanPathLoss& pl,
                       Rng& rng) const;
};

/// Amplitude of a unit-power waveform scaled so that, against complex AWGN
/// of unit variance, the per-sample SNR equals `snr_db`.
double snr_db_to_amplitude(double snr_db);

/// Minimum demodulation SNR of standard LoRa at a given spreading factor
/// (SX1276 datasheet-style sensitivity: -7.5 dB at SF7 down to -20 dB at
/// SF12, in 2.5 dB steps).
double lora_demod_floor_snr_db(int sf);

}  // namespace choir::channel
