// Flight-recorder capture replay: re-decodes a cf32 capture written by
// obs::FlightRecorder (see src/obs/flight_recorder.hpp) standalone, under
// the same decoder options the StreamingReceiver that wrote it ran with,
// and checks the recomputed canonical diagnostics against the sidecar
// byte-for-byte.
//
// That byte equality is the point: a capture taken in the field (or by a
// test forcing a CRC failure) becomes a deterministic regression input for
// the whole collision-decode path. Replay assumes the stream ran with the
// default StreamingOptions decoder configuration — the sidecar records the
// PHY (sf, bandwidth) but not decoder tuning overrides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/collision_decoder.hpp"
#include "lora/params.hpp"

namespace choir::rt {

struct ReplayResult {
  lora::PhyParams phy;  ///< reconstructed from the sidecar
  int channel = -1;
  std::string reason;
  std::uint64_t trace_id = 0;
  std::uint64_t anchor = 0;         ///< absolute stream sample of the anchor
  std::uint64_t capture_start = 0;  ///< absolute stream sample of capture[0]
  bool truncated = false;  ///< anchor fell off the ring; exactness waived
  std::string recorded_diag;  ///< canonical diag line from the sidecar
  std::string replayed_diag;  ///< recomputed by the re-decode
  bool diag_match = false;    ///< recorded_diag == replayed_diag
  std::vector<core::DecodedUser> users;  ///< the re-decoded users
  /// Stage spans the re-decode went through (estimation, SIC rounds) —
  /// empty when observability is compiled out.
  std::vector<obs::TraceStage> stages;
};

/// Replays the capture described by `sidecar_path` (the `.json` sidecar; a
/// `.cf32` path is accepted and redirected to its sidecar). Throws
/// std::runtime_error on unreadable or malformed inputs.
ReplayResult replay_capture(const std::string& sidecar_path);

}  // namespace choir::rt
