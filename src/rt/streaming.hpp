// Streaming receiver: a push-based wrapper that turns the batch decoders
// into something an SDR pipeline (or a file reader) can feed chunk by
// chunk.
//
// The receiver buffers incoming samples, scans for preambles, and once a
// frame (or collision of frames) has fully arrived, runs the Choir
// collision decoder and emits one event per decoded user. Consumed samples
// are discarded, so memory stays bounded for arbitrarily long streams.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/collision_decoder.hpp"
#include "lora/demodulator.hpp"
#include "obs/flight_recorder.hpp"

namespace choir::rt {

/// One decoded uplink frame (or a per-user slice of a decoded collision).
struct FrameEvent {
  std::uint64_t stream_offset = 0;  ///< absolute sample index of frame start
  /// Frame-trace id minted at emission (0 when tracing is off or compiled
  /// out); downstream stages append to the trace by this id.
  obs::TraceId trace_id = 0;
  core::DecodedUser user;
};

struct StreamingOptions {
  core::CollisionDecoderOptions decoder{};
  lora::DemodOptions detector{};
  /// Samples retained behind the scan cursor (context for a frame whose
  /// preamble was detected late).
  std::size_t backtrack_symbols = 2;
  /// Upper bound on the payload the stream is expected to carry; bounds
  /// how long the receiver waits before decoding a detected frame.
  std::size_t max_payload_bytes = 64;
  /// Channel index stamped on this stream's obs decode events (-1 = not a
  /// gateway pipeline). Purely observational; never affects decoding.
  int obs_channel = -1;
  /// Mint a per-frame trace for every emitted frame (obs builds only).
  bool trace_frames = true;
  /// When true, the receiver leaves its traces open for downstream stages
  /// (the gateway aggregator completes them); when false, a trace is
  /// completed as soon as the frame callback returns.
  bool trace_completed_downstream = false;
  /// IQ flight recorder (disabled unless `flight.dir` is set): snapshots
  /// the baseband window of a failed decode to disk for offline replay.
  obs::FlightRecorderOptions flight{};
};

/// The collision-decoder options the receiver actually runs with:
/// `opt.decoder` plus the timing slack detection alignment requires.
/// Shared with tools/choir_replay so a flight-recorder capture re-decodes
/// under the exact options of the stream that wrote it.
core::CollisionDecoderOptions streaming_decoder_options(
    const lora::PhyParams& phy, const StreamingOptions& opt);

/// Plain per-user records (obs schema) from decoder output, in decoder
/// user-slot order. Shared by the decode-event log, the flight-recorder
/// sidecar, and choir_replay — all three must agree byte-for-byte.
std::vector<obs::DecodeUserRecord> to_decode_records(
    const std::vector<core::DecodedUser>& users);

class StreamingReceiver {
 public:
  using Callback = std::function<void(const FrameEvent&)>;

  StreamingReceiver(const lora::PhyParams& phy, const StreamingOptions& opt,
                    Callback on_frame);

  /// Feeds a chunk of samples; the callback fires for every frame that
  /// completed inside the buffered stream. Chunks may be any size down to
  /// a single sample — scanning is deferred until at least one symbol of
  /// new data has accumulated, so tiny chunks cost no extra work.
  void push(const cvec& chunk);

  /// Flushes the tail of the stream (call at end of input): attempts to
  /// decode any detected-but-incomplete frame with what is buffered.
  /// Idempotent — repeated calls without an intervening push() do nothing.
  void flush();

  /// Absolute index of the next unconsumed sample.
  std::uint64_t consumed() const { return consumed_; }

  /// Number of decode attempts made (diagnostics).
  std::size_t decode_attempts() const { return decode_attempts_; }

  /// The flight recorder, when one is configured (null otherwise).
  const obs::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }

 private:
  void scan(bool at_end);

  lora::PhyParams phy_;
  StreamingOptions opt_;
  Callback on_frame_;
  core::CollisionDecoder decoder_;
  lora::Demodulator detector_;
  /// Per-attempt trace scratch: the worker-side stages of one decode
  /// attempt, copied into every frame trace minted from that attempt.
  obs::TraceCollector trace_scratch_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  cvec buffer_;
  std::uint64_t consumed_ = 0;  ///< absolute index of buffer_[0]
  std::size_t decode_attempts_ = 0;
  std::size_t unscanned_ = 0;   ///< samples pushed since the last scan
  bool flushed_ = false;        ///< tail already flushed, nothing pending
  /// Buffer index preamble scans restart from. Everything before it has
  /// already been scanned without a detection — minus a safety margin of
  /// one preamble run, since a run straddling the old buffer end only
  /// fires once its tail windows arrive.
  std::size_t scan_from_ = 0;
};

}  // namespace choir::rt
