// Streaming receiver: a push-based wrapper that turns the batch decoders
// into something an SDR pipeline (or a file reader) can feed chunk by
// chunk.
//
// The receiver buffers incoming samples, scans for preambles, and once a
// frame (or collision of frames) has fully arrived, runs the Choir
// collision decoder and emits one event per decoded user. Consumed samples
// are discarded, so memory stays bounded for arbitrarily long streams.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/collision_decoder.hpp"
#include "lora/demodulator.hpp"

namespace choir::rt {

/// One decoded uplink frame (or a per-user slice of a decoded collision).
struct FrameEvent {
  std::uint64_t stream_offset = 0;  ///< absolute sample index of frame start
  core::DecodedUser user;
};

struct StreamingOptions {
  core::CollisionDecoderOptions decoder{};
  lora::DemodOptions detector{};
  /// Samples retained behind the scan cursor (context for a frame whose
  /// preamble was detected late).
  std::size_t backtrack_symbols = 2;
  /// Upper bound on the payload the stream is expected to carry; bounds
  /// how long the receiver waits before decoding a detected frame.
  std::size_t max_payload_bytes = 64;
  /// Channel index stamped on this stream's obs decode events (-1 = not a
  /// gateway pipeline). Purely observational; never affects decoding.
  int obs_channel = -1;
};

class StreamingReceiver {
 public:
  using Callback = std::function<void(const FrameEvent&)>;

  StreamingReceiver(const lora::PhyParams& phy, const StreamingOptions& opt,
                    Callback on_frame);

  /// Feeds a chunk of samples; the callback fires for every frame that
  /// completed inside the buffered stream. Chunks may be any size down to
  /// a single sample — scanning is deferred until at least one symbol of
  /// new data has accumulated, so tiny chunks cost no extra work.
  void push(const cvec& chunk);

  /// Flushes the tail of the stream (call at end of input): attempts to
  /// decode any detected-but-incomplete frame with what is buffered.
  /// Idempotent — repeated calls without an intervening push() do nothing.
  void flush();

  /// Absolute index of the next unconsumed sample.
  std::uint64_t consumed() const { return consumed_; }

  /// Number of decode attempts made (diagnostics).
  std::size_t decode_attempts() const { return decode_attempts_; }

 private:
  void scan(bool at_end);

  lora::PhyParams phy_;
  StreamingOptions opt_;
  Callback on_frame_;
  core::CollisionDecoder decoder_;
  lora::Demodulator detector_;
  cvec buffer_;
  std::uint64_t consumed_ = 0;  ///< absolute index of buffer_[0]
  std::size_t decode_attempts_ = 0;
  std::size_t unscanned_ = 0;   ///< samples pushed since the last scan
  bool flushed_ = false;        ///< tail already flushed, nothing pending
  /// Buffer index preamble scans restart from. Everything before it has
  /// already been scanned without a detection — minus a safety margin of
  /// one preamble run, since a run straddling the old buffer end only
  /// fires once its tail windows arrive.
  std::size_t scan_from_ = 0;
};

}  // namespace choir::rt
