#include "rt/streaming.hpp"

#include <algorithm>
#include <memory>

#include "lora/frame.hpp"
#include "obs/obs.hpp"

namespace choir::rt {

core::CollisionDecoderOptions streaming_decoder_options(
    const lora::PhyParams& phy, const StreamingOptions& opt) {
  // Detection aligns the anchor only to within an eighth of a symbol,
  // which the decoder must absorb as (possibly negative) timing.
  auto dopt = opt.decoder;
  dopt.max_timing_samples =
      std::max(dopt.max_timing_samples,
               static_cast<double>(phy.chips()) / 8.0 + 8.0);
  return dopt;
}

std::vector<obs::DecodeUserRecord> to_decode_records(
    const std::vector<core::DecodedUser>& users) {
  std::vector<obs::DecodeUserRecord> records;
  records.reserve(users.size());
  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    const core::DecodedUser& du = users[ui];
    obs::DecodeUserRecord rec;
    rec.cluster = static_cast<std::int32_t>(ui);
    rec.offset_bins = du.est.offset_bins;
    rec.cfo_bins = du.est.cfo_bins;
    rec.timing_samples = du.est.timing_samples;
    rec.snr_db = du.est.snr_db;
    rec.frame_ok = du.frame_ok;
    rec.crc_ok = du.crc_ok;
    rec.payload_bytes = static_cast<std::uint32_t>(du.payload.size());
    records.push_back(rec);
  }
  return records;
}

StreamingReceiver::StreamingReceiver(const lora::PhyParams& phy,
                                     const StreamingOptions& opt,
                                     Callback on_frame)
    : phy_(phy),
      opt_(opt),
      on_frame_(std::move(on_frame)),
      decoder_(phy, streaming_decoder_options(phy, opt)),
      detector_(phy, opt.detector) {
  phy_.validate();
  if constexpr (obs::kEnabled) {
    if (!opt_.flight.dir.empty()) {
      recorder_ = std::make_unique<obs::FlightRecorder>(
          opt_.flight, opt_.obs_channel, phy_.sf, phy_.bandwidth_hz);
    }
  }
}

void StreamingReceiver::push(const cvec& chunk) {
  CHOIR_OBS_COUNT("rt.samples_in", chunk.size());
  if constexpr (obs::kEnabled) {
    if (recorder_) recorder_->push(chunk);
  }
  buffer_.insert(buffer_.end(), chunk.begin(), chunk.end());
  flushed_ = false;
  // A scan cannot make progress on less than one new symbol window, and
  // re-scanning the whole buffer per pushed sample would make tiny chunks
  // quadratic — batch until a symbol's worth of samples arrived.
  unscanned_ += chunk.size();
  if (unscanned_ < phy_.chips()) return;
  unscanned_ = 0;
  scan(/*at_end=*/false);
}

void StreamingReceiver::flush() {
  if (flushed_) return;
  flushed_ = true;
  CHOIR_OBS_COUNT("rt.flushes", 1);
  unscanned_ = 0;
  scan(/*at_end=*/true);
}

void StreamingReceiver::scan(bool at_end) {
  CHOIR_OBS_TIMED_SCOPE("rt.scan.us");
  const std::size_t n = phy_.chips();
  // Longest frame we are prepared to decode, in samples.
  const std::size_t frame_span =
      (static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) +
       lora::frame_symbol_count(opt_.max_payload_bytes, phy_)) *
      n;

  while (true) {
    double detect_t0 = 0.0;
    if constexpr (obs::kEnabled) detect_t0 = obs::trace_now_us();
    const auto found = detector_.detect_preamble(buffer_, scan_from_);
    double detect_dur = 0.0;
    if constexpr (obs::kEnabled) detect_dur = obs::trace_now_us() - detect_t0;
    if (!found) {
      // Nothing detected. A run of consecutive preamble windows that
      // straddles the buffer end only fires once its tail windows arrive,
      // so the next scan may restart just one run-length (plus the window
      // detect_preamble backs up by) before the current end instead of
      // re-scanning the whole retained history.
      const std::size_t margin =
          (static_cast<std::size_t>(opt_.detector.min_preamble_run) + 1) * n;
      scan_from_ = buffer_.size() > margin ? buffer_.size() - margin : 0;
      // Drop all but one frame-span of history (a preamble could be
      // straddling the chunk boundary).
      if (buffer_.size() > frame_span) {
        const std::size_t drop = buffer_.size() - frame_span;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(drop));
        consumed_ += drop;
        scan_from_ -= std::min(scan_from_, drop);
      }
      return;
    }

    // Give the detected frame a little leading context.
    const std::size_t back = opt_.backtrack_symbols * n;
    const std::size_t start = *found > back ? *found - back : 0;
    if (!at_end && buffer_.size() < start + frame_span) {
      return;  // frame not fully buffered yet; wait for more samples
    }

    ++decode_attempts_;
    CHOIR_OBS_COUNT("rt.decode_attempts", 1);
    // Stage spans for this attempt accumulate in the scratch collector;
    // they become per-frame traces only if the attempt emits frames.
    obs::TraceCollector* trace = nullptr;
    if constexpr (obs::kEnabled) {
      if (opt_.trace_frames) {
        trace_scratch_.clear();
        trace_scratch_.add("rt.detect", detect_t0, detect_dur);
        trace = &trace_scratch_;
      }
    }
    // Refine alignment with the single-user pipeline (it knows how to line
    // up the SFD), then hand the anchor to the collision decoder so *all*
    // users in the pile-up are recovered.
    const auto aligned = [&] {
      CHOIR_OBS_TRACE_SPAN(trace, "rt.align");
      return detector_.demodulate(buffer_, start);
    }();
    const std::size_t anchor =
        aligned.detected ? aligned.frame_start : *found;
    core::DecodeDiag diag;
    obs::Clock::time_point decode_t0{};
    if constexpr (obs::kEnabled) decode_t0 = obs::Clock::now();
    const auto users = decoder_.decode(buffer_, anchor, &diag, trace);

    // The estimator occasionally splits one transmission into two nearby
    // user hypotheses that both parse to the same payload; emit each
    // payload once, preferring the CRC-clean, strongest copy.
    std::vector<const core::DecodedUser*> emit;
    for (const auto& du : users) {
      if (!du.frame_ok) continue;
      bool duplicate = false;
      for (auto& kept : emit) {
        if (kept->payload != du.payload) continue;
        duplicate = true;
        const auto rank = [](const core::DecodedUser& u) {
          return std::make_pair(u.crc_ok ? 1 : 0, u.est.snr_db);
        };
        if (rank(du) > rank(*kept)) kept = &du;
        break;
      }
      if (!duplicate) emit.push_back(&du);
    }
    std::size_t decoded_syms = 0;
    obs::TraceId first_trace = 0;
    for (const auto* du : emit) {
      FrameEvent ev;
      ev.stream_offset = consumed_ + anchor;
      ev.user = *du;
      if constexpr (obs::kEnabled) {
        if (trace != nullptr) {
          // The frame exists now: mint its trace, seeded with the stages
          // the whole attempt shared (colliding frames share the decode).
          obs::FrameTrace ft;
          ft.channel = opt_.obs_channel;
          ft.sf = phy_.sf;
          ft.stream_offset = consumed_ + anchor;
          ft.crc_ok = du->crc_ok;
          ft.stages = trace_scratch_.stages();
          ev.trace_id = obs::trace_log().begin(std::move(ft));
          obs::trace_log().add_stage(ev.trace_id, "rt.emit",
                                     obs::trace_now_us(), 0.0);
          if (first_trace == 0) first_trace = ev.trace_id;
        }
      }
      on_frame_(ev);
      if constexpr (obs::kEnabled) {
        if (ev.trace_id != 0 && !opt_.trace_completed_downstream) {
          obs::trace_log().complete(ev.trace_id);
        }
      }
      decoded_syms = std::max(
          decoded_syms, lora::frame_symbol_count(du->payload.size(), phy_));
    }
    CHOIR_OBS_COUNT("rt.frames_emitted", emit.size());

    // One structured decode event per attempt: what the estimation stage
    // saw, how every user hypothesis fared, and what was emitted.
    if constexpr (obs::kEnabled) {
      const auto records = to_decode_records(users);
      obs::DecodeEvent oev;
      oev.channel = opt_.obs_channel;
      oev.sf = phy_.sf;
      oev.stream_offset = consumed_ + anchor;
      oev.peak_count = static_cast<std::uint32_t>(diag.peak_count);
      oev.sic_rounds = static_cast<std::uint32_t>(diag.sic_rounds);
      oev.users_emitted = static_cast<std::uint32_t>(emit.size());
      oev.decode_us = obs::elapsed_us(decode_t0, obs::Clock::now());
      oev.users = records;
      obs::decode_log().record(std::move(oev));

      // Flight-recorder triggers: every failure mode is worth a capture,
      // but a CRC failure is the most specific signal, so it names the
      // file when several apply.
      if (recorder_ && recorder_->enabled()) {
        bool any_crc_fail = false;  // parsed frame, bad payload CRC
        bool any_crc_ok = false;
        for (const auto& du : users) {
          if (du.frame_ok && !du.crc_ok) any_crc_fail = true;
          if (du.crc_ok) any_crc_ok = true;
        }
        const char* reason = nullptr;
        if (opt_.flight.trigger_crc_fail && any_crc_fail) {
          reason = "crc_fail";
        } else if (opt_.flight.trigger_sic_exhausted && !users.empty() &&
                   !any_crc_ok &&
                   diag.sic_rounds >= opt_.decoder.packet_sic_rounds) {
          reason = "sic_exhausted";
        } else if (opt_.flight.trigger_decode_fail && !any_crc_ok) {
          reason = "decode_fail";
        }
        if (reason != nullptr) {
          obs::CaptureContext ctx;
          ctx.reason = reason;
          ctx.anchor = consumed_ + anchor;
          // End exactly at the decoded window's edge: replay must see the
          // same number of trailing samples the live decode saw, or its
          // window-count bounds (and therefore its diagnostics) diverge.
          ctx.stream_end = consumed_ + buffer_.size();
          ctx.trace_id = first_trace;
          ctx.peak_count = static_cast<std::uint32_t>(diag.peak_count);
          ctx.sic_rounds = static_cast<std::uint32_t>(diag.sic_rounds);
          ctx.users = records;
          // The cf32 file stores float32; the live decode ran on doubles.
          // For the sidecar to describe the *file* exactly (the
          // byte-for-byte replay contract), re-decode the window as
          // quantized — only when a capture will actually be written, so
          // the extra decode is bounded by the retention cap.
          cvec quantized;
          std::uint64_t cap_start = 0;
          if (recorder_->will_write() &&
              recorder_->extract(ctx.anchor, ctx.stream_end, &quantized,
                                 &cap_start) &&
              cap_start <= ctx.anchor) {
            core::DecodeDiag qdiag;
            const auto qusers = decoder_.decode(
                quantized,
                static_cast<std::size_t>(ctx.anchor - cap_start), &qdiag);
            ctx.peak_count = static_cast<std::uint32_t>(qdiag.peak_count);
            ctx.sic_rounds = static_cast<std::uint32_t>(qdiag.sic_rounds);
            ctx.users = to_decode_records(qusers);
          }
          if (!recorder_->trigger(ctx).empty()) {
            CHOIR_OBS_COUNT("rt.flight.captures", 1);
          }
        }
      }
    }

    // Consume through the end of this frame (collisions share the span).
    // When a user decoded, its payload tells the frame's real extent —
    // consuming the full worst-case span instead would swallow the head of
    // a closely following frame.
    const std::size_t span =
        decoded_syms > 0
            ? (static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) +
               decoded_syms + 1) *
                  n
            : frame_span;
    const std::size_t consumed_through =
        std::min(buffer_.size(), anchor + span);
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_through));
    consumed_ += consumed_through;
    scan_from_ = 0;  // the remaining tail has not been scanned on its own
    if (at_end && buffer_.empty()) return;
    if (buffer_.size() < n) return;
  }
}

}  // namespace choir::rt
