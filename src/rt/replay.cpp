#include "rt/replay.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/flight_recorder.hpp"
#include "rt/streaming.hpp"
#include "util/iq_io.hpp"

namespace choir::rt {

namespace {

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("replay: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// The sidecar is machine-written with a fixed key set (one key per line),
// so targeted key lookups beat dragging in a JSON parser dependency.
std::string find_value(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = doc.find(needle);
  if (at == std::string::npos) {
    throw std::runtime_error("replay: sidecar missing key \"" + key + "\"");
  }
  std::size_t from = at + needle.size();
  while (from < doc.size() && doc[from] == ' ') ++from;
  std::size_t to = doc.find('\n', from);
  if (to == std::string::npos) to = doc.size();
  std::string value = doc.substr(from, to - from);
  while (!value.empty() && (value.back() == ',' || value.back() == ' ')) {
    value.pop_back();
  }
  return value;
}

std::string unquote(std::string v) {
  if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
    return v.substr(1, v.size() - 2);
  }
  return v;
}

}  // namespace

ReplayResult replay_capture(const std::string& sidecar_path) {
  std::string json_path = sidecar_path;
  const std::string cf32_ext = ".cf32";
  if (json_path.size() > cf32_ext.size() &&
      json_path.compare(json_path.size() - cf32_ext.size(), cf32_ext.size(),
                        cf32_ext) == 0) {
    json_path.replace(json_path.size() - cf32_ext.size(), cf32_ext.size(),
                      ".json");
  }
  const std::string doc = read_text_file(json_path);

  ReplayResult res;
  res.channel = std::atoi(find_value(doc, "channel").c_str());
  res.reason = unquote(find_value(doc, "reason"));
  res.trace_id = std::strtoull(find_value(doc, "trace_id").c_str(), nullptr, 10);
  res.anchor = std::strtoull(find_value(doc, "anchor").c_str(), nullptr, 10);
  res.capture_start =
      std::strtoull(find_value(doc, "capture_start").c_str(), nullptr, 10);
  res.truncated = find_value(doc, "truncated") == "true";
  res.recorded_diag = find_value(doc, "diag");
  res.phy.sf = std::atoi(find_value(doc, "sf").c_str());
  res.phy.bandwidth_hz = std::strtod(find_value(doc, "bandwidth_hz").c_str(),
                                     nullptr);
  res.phy.validate();

  const std::string capture_name = unquote(find_value(doc, "capture"));
  const std::size_t slash = json_path.find_last_of('/');
  const std::string capture_path =
      slash == std::string::npos ? capture_name
                                 : json_path.substr(0, slash + 1) + capture_name;
  const cvec samples = read_iq_file(capture_path, IqFormat::kCf32);

  if (res.anchor < res.capture_start ||
      res.anchor - res.capture_start >= samples.size()) {
    throw std::runtime_error("replay: anchor outside capture window");
  }
  const std::size_t anchor_in_capture =
      static_cast<std::size_t>(res.anchor - res.capture_start);

  // Same decoder configuration the live stream ran with (the streaming
  // receiver widens max_timing_samples for detection slack); same anchor,
  // same samples from the anchor to the stream edge — so the diagnostics
  // must come out identical.
  const core::CollisionDecoder decoder(
      res.phy, streaming_decoder_options(res.phy, StreamingOptions{}));
  core::DecodeDiag diag;
  obs::TraceCollector collector;
  res.users = decoder.decode(samples, anchor_in_capture, &diag, &collector);
  res.stages = collector.stages();
  res.replayed_diag = obs::format_decode_diag(
      static_cast<std::uint32_t>(diag.peak_count),
      static_cast<std::uint32_t>(diag.sic_rounds), to_decode_records(res.users));
  res.diag_match = res.replayed_diag == res.recorded_diag;
  return res;
}

}  // namespace choir::rt
