// Event aggregator: merges per-(channel, SF) frame events into one
// globally ordered gateway feed.
//
// Workers decode independently and finish in nondeterministic wall-clock
// order, so events arrive interleaved. The aggregator timestamps nothing
// itself — every event already carries the absolute sample offset of its
// frame start within its channel stream, and all channel streams tick at
// the same baseband rate, so that offset is a global time axis. Ordering is
// total (offset, then channel, then SF, then payload) which makes the
// drained feed deterministic across runs and worker counts.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "rt/streaming.hpp"

namespace choir::gateway {

/// One decoded frame, tagged with where in the gateway it came from.
struct GatewayEvent {
  /// Which gateway instance decoded this frame (GatewayConfig::gateway_id)
  /// — the provenance the network server's cross-gateway dedup keys on.
  std::uint32_t gateway_id = 0;
  std::size_t channel = 0;          ///< channelizer output index
  int sf = 0;                       ///< spreading factor of the pipeline
  std::uint64_t stream_offset = 0;  ///< frame start, baseband samples
  /// Frame-trace id carried from the receiver (0 = not traced); the
  /// aggregator appends its own stage to the trace on add().
  std::uint64_t trace_id = 0;
  core::DecodedUser user;
};

/// True if `a` sorts strictly before `b` in the global feed order.
bool event_before(const GatewayEvent& a, const GatewayEvent& b);

class EventAggregator {
 public:
  /// Thread-safe; called by workers as frames decode.
  void add(GatewayEvent ev);

  std::size_t count() const;

  /// Moves out everything collected so far, sorted into the global order.
  /// Call after the workers have been joined for a complete, deterministic
  /// feed (calling mid-run is safe but yields a partial prefix).
  std::vector<GatewayEvent> drain_ordered();

 private:
  mutable std::mutex mu_;
  std::vector<GatewayEvent> events_;
};

}  // namespace choir::gateway
