// Synthetic multi-channel uplink traffic for driving the gateway.
//
// Builds on the same machinery as the network simulator's adjudication
// path (channel::render_collision): each narrowband channel gets its own
// sequence of LoRa uplinks — randomized devices, SNRs, payloads and
// exponential inter-frame gaps — rendered noiselessly at baseband. The K
// baseband captures are then upconverted to their channel centers by exact
// frequency-domain interpolation (zero-pad in time, place each channel's
// spectrum at bin offset k*L in the K*L-point wideband spectrum, inverse
// FFT) and complex AWGN is added at the wideband rate with variance K, so
// that after the channelizer's unit-gain lowpass each baseband stream sees
// approximately unit-variance noise — the same convention the rest of the
// codebase uses for per-sample SNR.
//
// Ground truth (channel, payload, start) for every frame is returned so
// tests and benches can score the gateway by decoded content.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/oscillator.hpp"
#include "lora/params.hpp"
#include "util/types.hpp"

namespace choir::gateway {

struct TrafficConfig {
  /// Per-channel PHY (sf, bandwidth, coding rate) shared by all frames.
  lora::PhyParams phy{};
  std::size_t n_channels = 8;       ///< power of two >= 2
  std::size_t frames_per_channel = 3;
  std::size_t payload_bytes = 8;
  double snr_db_min = 15.0;
  double snr_db_max = 20.0;
  /// Mean gap between consecutive frames on a channel, in symbols
  /// (exponentially distributed, so channels stay unsynchronized).
  double gap_symbols_mean = 24.0;
  /// Stamp the network tier's compact device header on every payload
  /// (payload[0] = DevAddr, payload[1..2] = FCnt little-endian, see
  /// src/net/uplink.hpp): each frame gets a distinct (DevAddr, FCnt) pair,
  /// deterministic in `seed`, so two gateway instances fed the same seed
  /// emit byte-identical frames a network server can deduplicate.
  /// Requires payload_bytes >= 3.
  bool stamp_device_headers = false;
  bool add_noise = true;
  channel::OscillatorModel osc{};
  std::uint64_t seed = 1;
};

struct TrafficFrame {
  std::size_t channel = 0;
  std::vector<std::uint8_t> payload;
  double start_s = 0.0;  ///< nominal frame start within the capture
};

struct WidebandCapture {
  cvec samples;                 ///< wideband IQ at n_channels * B
  double sample_rate_hz = 0.0;
  std::vector<TrafficFrame> frames;  ///< ground truth, all channels
};

/// Renders the full synthetic capture. Deterministic in cfg.seed.
WidebandCapture generate_traffic(const TrafficConfig& cfg);

/// Exact band-limited upconversion: interleaves K equal-rate baseband
/// streams into one wideband stream at K times the rate, channel k landing
/// at center frequency k*B (wrapped). Streams shorter than the longest are
/// zero-extended. Exposed for the channelizer round-trip tests.
cvec upconvert_channels(const std::vector<cvec>& channels);

}  // namespace choir::gateway
