// Gateway-level counters, shared between the producer, the workers and
// whoever is watching (app status line, bench reporter, tests).
//
// All counters are monotonic and relaxed-atomic: they are diagnostics, not
// synchronization — ordering between them is established by the queues and
// thread joins, never by the counters themselves.
//
// Every add is mirrored into the process-wide obs registry (gateway.*
// counters) so `--metrics-out` sees the gateway alongside the decode
// pipeline's own metrics; the per-instance atomics remain authoritative for
// GatewayRuntime::counters(), which must stay per-runtime (tests construct
// several runtimes per process). With CHOIR_OBS=OFF the mirror compiles
// out and only the per-instance counters remain.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/obs.hpp"

namespace choir::gateway {

/// Point-in-time copy of every gateway counter (plain values, safe to pass
/// around after the runtime is gone).
struct GatewayCounters {
  std::uint64_t wideband_samples_in = 0;  ///< samples pushed into the gateway
  std::uint64_t chunks_enqueued = 0;      ///< per-pipeline chunks queued
  std::uint64_t chunks_dropped = 0;       ///< chunks lost to kDropNewest
  std::uint64_t frames_decoded = 0;       ///< frame events emitted (frame_ok)
  std::uint64_t crc_failures = 0;         ///< of those, failed payload CRC
  std::uint64_t decode_attempts = 0;      ///< summed over all receivers
  std::vector<std::size_t> queue_high_water;  ///< per worker queue
  std::size_t max_queue_high_water() const;
};

/// One line per counter, for the app/bench status output.
std::string format_counters(const GatewayCounters& c);

class GatewayStats {
 public:
  GatewayStats();

  void add_samples(std::uint64_t n) {
    samples_.fetch_add(n, relaxed);
    if constexpr (obs::kEnabled) reg_samples_->add(n);
  }
  void add_chunk() {
    chunks_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_chunks_->add(1);
  }
  void add_frame(bool crc_ok) {
    frames_.fetch_add(1, relaxed);
    if constexpr (obs::kEnabled) reg_frames_->add(1);
    if (!crc_ok) {
      crc_fail_.fetch_add(1, relaxed);
      if constexpr (obs::kEnabled) reg_crc_fail_->add(1);
    }
  }
  void add_decode_attempts(std::uint64_t n) {
    attempts_.fetch_add(n, relaxed);
    if constexpr (obs::kEnabled) reg_attempts_->add(n);
  }
  void add_dropped(std::uint64_t n) {
    if constexpr (obs::kEnabled) {
      if (n > 0) reg_dropped_->add(n);
    }
  }

  std::uint64_t frames_decoded() const { return frames_.load(relaxed); }

  /// Snapshot of the scalar counters (queue high-water marks and drop
  /// counts live in the queues; GatewayRuntime::counters() fills them in).
  GatewayCounters snapshot() const {
    GatewayCounters c;
    c.wideband_samples_in = samples_.load(relaxed);
    c.chunks_enqueued = chunks_.load(relaxed);
    c.frames_decoded = frames_.load(relaxed);
    c.crc_failures = crc_fail_.load(relaxed);
    c.decode_attempts = attempts_.load(relaxed);
    return c;
  }

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> frames_{0};
  std::atomic<std::uint64_t> crc_fail_{0};
  std::atomic<std::uint64_t> attempts_{0};
  // Registry mirrors (process-lifetime handles; null iff obs disabled).
  obs::Counter* reg_samples_ = nullptr;
  obs::Counter* reg_chunks_ = nullptr;
  obs::Counter* reg_frames_ = nullptr;
  obs::Counter* reg_crc_fail_ = nullptr;
  obs::Counter* reg_attempts_ = nullptr;
  obs::Counter* reg_dropped_ = nullptr;
};

}  // namespace choir::gateway
