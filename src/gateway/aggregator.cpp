#include "gateway/aggregator.hpp"

#include <algorithm>
#include <tuple>

#include "obs/obs.hpp"

namespace choir::gateway {

bool event_before(const GatewayEvent& a, const GatewayEvent& b) {
  const auto key = [](const GatewayEvent& e) {
    return std::tie(e.stream_offset, e.channel, e.sf, e.user.payload);
  };
  return key(a) < key(b);
}

void EventAggregator::add(GatewayEvent ev) {
  if constexpr (obs::kEnabled) {
    if (ev.trace_id != 0) {
      obs::trace_log().add_stage(ev.trace_id, "gateway.aggregate",
                                 obs::trace_now_us(), 0.0);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(ev));
}

std::size_t EventAggregator::count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<GatewayEvent> EventAggregator::drain_ordered() {
  std::vector<GatewayEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(events_);
  }
  std::stable_sort(out.begin(), out.end(), event_before);
  return out;
}

}  // namespace choir::gateway
