// Multi-channel gateway runtime: the concurrent pipeline that turns one
// wideband IQ stream into a globally ordered feed of decoded frames.
//
//                      +--> queue[w0] --> worker 0: rx(ch0,sf7) rx(ch2,sf7)..
//   wideband --> FFT --+--> queue[w1] --> worker 1: rx(ch1,sf7) rx(ch3,sf7)..
//    chunks   channelizer        ...
//                      +--> queue[wN] --> worker N: ...
//                                   \---> EventAggregator --> ordered feed
//
// Threading model
//   * The caller's thread runs the channelizer and fans baseband chunks
//     out to the workers (single producer).
//   * Every (channel, SF) pair owns a dedicated rt::StreamingReceiver;
//     pipelines are sharded round-robin over the workers, and a pipeline
//     never migrates, so each receiver only ever runs on one thread and
//     needs no locking. Chunks for the pipelines of one worker travel
//     through one bounded SPSC queue in production order, preserving each
//     stream's sample order.
//   * Chunk buffers are shared (shared_ptr<const cvec>) between the SF
//     pipelines of a channel — read-only fan-out, no copies.
//
// Backpressure is the queue policy: kBlock makes the whole gateway
// lossless and deterministic (the producer throttles to the slowest
// worker); kDropNewest keeps the producer wait-free and counts every chunk
// it had to discard (see docs/GATEWAY.md).
//
// Determinism: with kBlock, the set of decoded frames — and, after
// stop()'s ordered drain, their order — is identical for any worker count,
// because every pipeline sees the exact same chunk sequence a serial run
// would feed it.
#pragma once

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "obs/obs.hpp"

#include "gateway/aggregator.hpp"
#include "gateway/channelizer.hpp"
#include "gateway/spsc_queue.hpp"
#include "gateway/stats.hpp"
#include "lora/params.hpp"
#include "rt/streaming.hpp"

namespace choir::gateway {

struct GatewayConfig {
  /// Identity of this gateway instance, stamped on every emitted event (and
  /// mirrored to the `gateway.id` obs gauge) so a network server receiving
  /// feeds from several gateways can attribute each reception.
  std::uint32_t gateway_id = 0;
  /// Per-channel PHY. `phy.sf` is ignored; the decoded SFs come from `sfs`.
  /// `phy.bandwidth_hz` is the channel bandwidth B; the wideband input rate
  /// is n_channels * B.
  lora::PhyParams phy{};
  /// Spreading factors decoded on every channel (one pipeline per pair).
  std::vector<int> sfs = {8};
  std::size_t n_channels = 8;
  std::size_t n_workers = 4;
  /// Bounded depth (in chunks) of each worker's input queue.
  std::size_t queue_capacity = 64;
  OverflowPolicy overflow = OverflowPolicy::kBlock;
  ChannelizerOptions channelizer{};
  rt::StreamingOptions streaming{};
};

class GatewayRuntime {
 public:
  explicit GatewayRuntime(const GatewayConfig& cfg);
  ~GatewayRuntime();

  GatewayRuntime(const GatewayRuntime&) = delete;
  GatewayRuntime& operator=(const GatewayRuntime&) = delete;

  /// Feeds a chunk of wideband samples (rate = n_channels * B). Runs the
  /// channelizer inline and enqueues the resulting baseband chunks to the
  /// workers. Call from one thread only.
  void push(const cvec& wideband_chunk);

  /// Ends the stream: closes the queues, lets every worker drain and flush
  /// its receivers, joins, and returns the complete event feed in global
  /// order. Idempotent; push() after stop() is an error.
  std::vector<GatewayEvent> stop();

  /// Live scalar counters plus per-worker queue high-water marks.
  GatewayCounters counters() const;

  const GatewayConfig& config() const { return cfg_; }
  std::size_t n_pipelines() const { return pipelines_.size(); }
  /// Wideband input sample rate implied by the config.
  double wideband_rate_hz() const {
    return cfg_.phy.bandwidth_hz * static_cast<double>(cfg_.n_channels);
  }

 private:
  struct WorkItem {
    std::size_t pipeline = 0;
    std::shared_ptr<const cvec> chunk;
    /// Enqueue time, for queue-wait and end-to-end latency metrics (only
    /// stamped when observability is compiled in).
    obs::Clock::time_point enqueued{};
    /// Trace-epoch enqueue time and the producer's thread ordinal — carried
    /// so a frame's trace can show who enqueued its final chunk and how
    /// long it sat in the queue.
    double enqueued_us = 0.0;
    std::uint32_t enqueue_tid = 0;
  };
  struct Pipeline {
    std::size_t channel = 0;
    int sf = 0;
    std::size_t worker = 0;
    std::unique_ptr<rt::StreamingReceiver> rx;
    /// Enqueue time of the chunk currently being decoded on this pipeline;
    /// the frame callback reads it to measure end-to-end frame latency.
    /// Written and read only on the owning worker's thread.
    obs::Clock::time_point chunk_ts{};
    /// Trace bookkeeping for the chunk currently being decoded (same
    /// single-thread ownership as chunk_ts).
    double chunk_enqueued_us = 0.0;
    double chunk_pop_us = 0.0;
    std::uint32_t chunk_enqueue_tid = 0;
    /// Dimensional decode series for this (sf, channel), registered once
    /// at construction: gateway.decoded{sf="..",channel=".."} and its
    /// crc_ok companion. Null iff obs is compiled out.
    obs::Counter* decoded = nullptr;
    obs::Counter* decoded_crc_ok = nullptr;
  };

  void worker_main(std::size_t w);

  GatewayConfig cfg_;
  Channelizer channelizer_;
  std::vector<Pipeline> pipelines_;
  std::vector<std::unique_ptr<BoundedSpscQueue<WorkItem>>> queues_;
  std::vector<std::thread> threads_;
  GatewayStats stats_;
  EventAggregator aggregator_;
  std::vector<cvec> scratch_;  ///< channelizer output, reused per push
  bool stopped_ = false;
};

}  // namespace choir::gateway
