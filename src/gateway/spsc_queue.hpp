// Bounded single-producer/single-consumer queue with explicit backpressure.
//
// The gateway's producer (the channelizer thread) feeds each worker through
// one of these. Capacity is fixed at construction; what happens when the
// consumer falls behind is the gateway's backpressure policy:
//
//  * kBlock      — push() waits for space. Lossless; the producer slows to
//                  the pipeline's decode rate (the deterministic mode, and
//                  the default).
//  * kDropNewest — push() discards the incoming item when full and counts
//                  it. Lossy but wait-free for the producer (a live SDR
//                  front end that must never stall).
//
// The implementation is a mutex+condvar ring: with exactly one producer and
// one consumer the lock is uncontended in the common case, and the queue
// stays trivially race-free under thread sanitizer. High-water mark and
// drop counters are maintained inside the lock and readable from any
// thread.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace choir::gateway {

enum class OverflowPolicy {
  kBlock,       ///< producer waits for queue space (lossless)
  kDropNewest,  ///< producer drops the incoming item and counts it
};

const char* overflow_policy_name(OverflowPolicy p);

template <typename T>
class BoundedSpscQueue {
 public:
  explicit BoundedSpscQueue(std::size_t capacity,
                            OverflowPolicy policy = OverflowPolicy::kBlock)
      : capacity_(capacity ? capacity : 1), policy_(policy) {}

  BoundedSpscQueue(const BoundedSpscQueue&) = delete;
  BoundedSpscQueue& operator=(const BoundedSpscQueue&) = delete;

  /// Enqueues `item` subject to the overflow policy. Returns false if the
  /// item was dropped (kDropNewest with a full queue) or the queue is
  /// closed; true once the item is enqueued.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (policy_ == OverflowPolicy::kBlock) {
      not_full_.wait(lock,
                     [&] { return closed_ || items_.size() < capacity_; });
    }
    if (closed_) return false;
    if (items_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained;
  /// returns nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; returns false if the queue is currently empty.
  bool try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Marks the stream finished: pending items remain poppable, further
  /// pushes fail, and blocked callers wake up.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// Largest queue depth ever observed (backpressure diagnostics).
  std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_water_;
  }

  /// Items discarded under kDropNewest.
  std::size_t dropped() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
  }

  std::size_t capacity() const { return capacity_; }
  OverflowPolicy policy() const { return policy_; }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  bool closed_ = false;
  std::size_t high_water_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace choir::gateway
