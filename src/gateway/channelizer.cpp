#include "gateway/channelizer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dsp/fft.hpp"
#include "dsp/simd/simd.hpp"

namespace choir::gateway {

namespace {

// Hamming-windowed sinc lowpass of length `taps * k` with cutoff
// `cutoff_scale * fs/(2k)`, normalized to unit DC gain so a tone at a
// channel center passes through the bank with unchanged amplitude.
rvec design_prototype(std::size_t k, std::size_t taps, double cutoff_scale) {
  const std::size_t len = taps * k;
  const double fc = cutoff_scale / (2.0 * static_cast<double>(k));
  const double center = static_cast<double>(len - 1) / 2.0;
  rvec h(len);
  double sum = 0.0;
  for (std::size_t j = 0; j < len; ++j) {
    const double t = static_cast<double>(j) - center;
    const double sinc =
        t == 0.0 ? 2.0 * fc : std::sin(kTwoPi * fc * t) / (kPi * t);
    const double win =
        0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(j) /
                               static_cast<double>(len - 1));
    h[j] = sinc * win;
    sum += h[j];
  }
  for (auto& v : h) v /= sum;
  return h;
}

}  // namespace

Channelizer::Channelizer(std::size_t n_channels, const ChannelizerOptions& opt)
    : k_(n_channels), taps_(opt.taps_per_channel) {
  if (k_ < 2 || !dsp::is_pow2(k_))
    throw std::invalid_argument("Channelizer: n_channels must be pow2 >= 2");
  if (taps_ < 1) throw std::invalid_argument("Channelizer: taps_per_channel");
  if (opt.cutoff_scale <= 0.0)
    throw std::invalid_argument("Channelizer: cutoff_scale");
  proto_ = design_prototype(k_, taps_, opt.cutoff_scale);
  // The fold runs through the complex-MAC kernel; a real tap h scales a
  // complex sample exactly as multiplication by cplx{h, 0}.
  proto_c_.resize(proto_.size());
  for (std::size_t j = 0; j < proto_.size(); ++j)
    proto_c_[j] = cplx{proto_[j], 0.0};
  window_.assign(taps_ * k_, cplx{0.0, 0.0});
  weighted_.resize(taps_ * k_);
  fold_.resize(k_);
  // Resolve the FFT plan now so worker threads never contend on first use
  // and the per-block hot loop skips even the thread-local cache lookup.
  plan_ = &dsp::plan_for(k_);
}

double Channelizer::center_frequency_hz(std::size_t ch,
                                        double wideband_rate_hz) const {
  if (ch >= k_) throw std::out_of_range("Channelizer: channel index");
  double f = static_cast<double>(ch) * wideband_rate_hz /
             static_cast<double>(k_);
  if (f > wideband_rate_hz / 2.0) f -= wideband_rate_hz;
  return f;
}

void Channelizer::push(const cvec& wideband, std::vector<cvec>& out) {
  out.resize(k_);
  const std::size_t hist = (taps_ - 1) * k_;  // offset of the newest block
  std::size_t at = 0;
  while (at < wideband.size()) {
    const std::size_t take = std::min(k_ - fill_, wideband.size() - at);
    std::copy(wideband.begin() + static_cast<std::ptrdiff_t>(at),
              wideband.begin() + static_cast<std::ptrdiff_t>(at + take),
              window_.begin() + static_cast<std::ptrdiff_t>(hist + fill_));
    fill_ += take;
    at += take;
    if (fill_ < k_) break;

    // Fold the P-block window through the polyphase branches, then one
    // K-point DFT evaluates every channel's mixer+decimator at once.
    // Two contiguous passes (weight all P*K samples, then sum the P rows
    // block-wise) instead of the textbook per-branch loop, whose inner
    // stride of K defeats both vector loads and the prefetcher.
    dsp::simd::active().cmul(weighted_.data(), window_.data(),
                             proto_c_.data(), taps_ * k_);
    std::copy(weighted_.begin(),
              weighted_.begin() + static_cast<std::ptrdiff_t>(k_),
              fold_.begin());
    for (std::size_t p = 1; p < taps_; ++p) {
      const cplx* row = weighted_.data() + p * k_;
      for (std::size_t i = 0; i < k_; ++i) fold_[i] += row[i];
    }
    plan_->forward_into(fold_.data());
    for (std::size_t ch = 0; ch < k_; ++ch) out[ch].push_back(fold_[ch]);
    ++emitted_;

    // Slide the window one block: the newest block becomes history.
    std::copy(window_.begin() + static_cast<std::ptrdiff_t>(k_),
              window_.end(), window_.begin());
    fill_ = 0;
  }
}

void Channelizer::reset() {
  std::fill(window_.begin(), window_.end(), cplx{0.0, 0.0});
  fill_ = 0;
  emitted_ = 0;
}

}  // namespace choir::gateway
