// Critically-sampled polyphase DFT channelizer.
//
// A LoRaWAN base station listens on K adjacent narrowband channels at once.
// The gateway front end receives one wideband stream at fs = K * B and this
// module splits it into K complex-baseband streams at rate B, one per
// channel, using the classic polyphase filterbank: the wideband stream is
// consumed in blocks of K samples, each block is folded through a windowed
// lowpass prototype (P taps per polyphase branch), and a K-point FFT (via
// dsp::fft) evaluates all K channel mixers at once. Channel k is centered
// at +k*B for k < K/2 and at (k-K)*B for k >= K/2 (the usual FFT frequency
// wrap).
//
// The channelizer is streaming: push() may be called with arbitrary chunk
// sizes and keeps the filter state (the last P-1 blocks) across calls, so
// feeding a capture in one push or sample-by-sample yields identical
// outputs. One output sample per channel is produced per K input samples,
// after a fixed transient of P-1 blocks of zero-padding.
#pragma once

#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace choir::dsp {
class FftPlan;
}

namespace choir::gateway {

struct ChannelizerOptions {
  /// Prototype-filter taps per polyphase branch (total length = taps * K).
  /// 1 degenerates to the rectangular (pure block-DFT) bank. The default
  /// balances transition-band sharpness (channels are packed edge to edge,
  /// so crossover leakage is the dominant distortion) against group delay,
  /// which the streaming decoder's timing search must absorb.
  std::size_t taps_per_channel = 16;
  /// Lowpass cutoff as a fraction of the channel Nyquist width B/2. A few
  /// percent above 1.0 keeps the chirp's band edges inside the flat
  /// passband at the cost of slightly more adjacent-channel noise.
  double cutoff_scale = 1.05;
};

class Channelizer {
 public:
  /// `n_channels` must be a power of two >= 2 (the K-point DFT reuses the
  /// radix-2 dsp::fft plans).
  explicit Channelizer(std::size_t n_channels,
                       const ChannelizerOptions& opt = {});

  std::size_t n_channels() const { return k_; }

  /// Signed center frequency of channel `ch` given the wideband sample
  /// rate: ch * (rate/K), wrapped into (-rate/2, rate/2].
  double center_frequency_hz(std::size_t ch, double wideband_rate_hz) const;

  /// Consumes a wideband chunk and appends the newly completed baseband
  /// samples to `out[ch]` for every channel. `out` is resized to K streams;
  /// existing contents are preserved (appended to).
  void push(const cvec& wideband, std::vector<cvec>& out);

  /// Drops all buffered state (filter history and the partial block).
  void reset();

  /// Total baseband samples emitted per channel so far.
  std::uint64_t emitted() const { return emitted_; }

  const rvec& prototype() const { return proto_; }

 private:
  std::size_t k_;        ///< number of channels = decimation factor
  std::size_t taps_;     ///< polyphase taps per branch (P)
  rvec proto_;           ///< prototype lowpass, length P*K, DC gain 1
  cvec proto_c_;         ///< prototype as cplx{h, 0} for the cmul kernel
  cvec window_;          ///< last P blocks, oldest first (P*K samples)
  std::size_t fill_ = 0; ///< valid samples in the newest (partial) block
  cvec weighted_;        ///< scratch: proto-weighted window, length P*K
  cvec fold_;            ///< scratch: folded block, length K
  /// Cached K-point plan. plan_for() resolves the SIMD dispatch before
  /// building any plan, so this pointer is always the per-ISA variant
  /// matching the active kernels — it cannot pair scalar butterflies with
  /// a SIMD twiddle layout or vice versa (see dsp/fft.hpp).
  const dsp::FftPlan* plan_ = nullptr;
  std::uint64_t emitted_ = 0;
};

}  // namespace choir::gateway
