#include "gateway/gateway.hpp"

#include <stdexcept>
#include <string>

namespace choir::gateway {

GatewayRuntime::GatewayRuntime(const GatewayConfig& cfg)
    : cfg_(cfg), channelizer_(cfg.n_channels, cfg.channelizer) {
  if (cfg_.n_workers < 1)
    throw std::invalid_argument("GatewayRuntime: n_workers must be >= 1");
  if (cfg_.sfs.empty())
    throw std::invalid_argument("GatewayRuntime: sfs must be non-empty");
  CHOIR_OBS_GAUGE_SET("gateway.id",
                      static_cast<std::int64_t>(cfg_.gateway_id));

  for (std::size_t w = 0; w < cfg_.n_workers; ++w) {
    queues_.push_back(std::make_unique<BoundedSpscQueue<WorkItem>>(
        cfg_.queue_capacity, cfg_.overflow));
  }

  pipelines_.reserve(cfg_.n_channels * cfg_.sfs.size());
  for (std::size_t ch = 0; ch < cfg_.n_channels; ++ch) {
    for (int sf : cfg_.sfs) {
      Pipeline pl;
      pl.channel = ch;
      pl.sf = sf;
      pl.worker = pipelines_.size() % cfg_.n_workers;
      lora::PhyParams phy = cfg_.phy;
      phy.sf = sf;
      rt::StreamingOptions sopt = cfg_.streaming;
      sopt.obs_channel = static_cast<int>(ch);
      // The aggregator and the ordered drain still run after the receiver
      // emits, so the receiver must leave traces open for them.
      sopt.trace_completed_downstream = true;
      const std::size_t idx = pipelines_.size();
      if constexpr (obs::kEnabled) {
        const std::string sf_s = std::to_string(sf);
        const std::string ch_s = std::to_string(ch);
        pl.decoded = &obs::registry().counter(
            obs::labeled("gateway.decoded", {{"sf", sf_s}, {"channel", ch_s}}));
        pl.decoded_crc_ok = &obs::registry().counter(obs::labeled(
            "gateway.decoded_crc_ok", {{"sf", sf_s}, {"channel", ch_s}}));
      }
      pl.rx = std::make_unique<rt::StreamingReceiver>(
          phy, sopt, [this, ch, sf, idx](const rt::FrameEvent& ev) {
            stats_.add_frame(ev.user.crc_ok);
            if constexpr (obs::kEnabled) {
              const Pipeline& p = pipelines_[idx];
              p.decoded->add(1);
              if (ev.user.crc_ok) p.decoded_crc_ok->add(1);
              // Enqueue-to-decode latency of the frame's final chunk.
              const auto ts = p.chunk_ts;
              if (ts != obs::Clock::time_point{}) {
                CHOIR_OBS_HIST("gateway.frame.latency.us",
                               obs::elapsed_us(ts, obs::Clock::now()));
              }
              if (ev.trace_id != 0 && p.chunk_enqueued_us > 0.0) {
                // Backfill the producer-side stages now that the frame's
                // trace exists: where its final chunk was enqueued and how
                // long it waited in the worker's queue.
                obs::trace_log().add_stage(ev.trace_id, "gateway.enqueue",
                                           p.chunk_enqueued_us, 0.0,
                                           p.chunk_enqueue_tid);
                obs::trace_log().add_stage(
                    ev.trace_id, "gateway.queue.wait", p.chunk_enqueued_us,
                    p.chunk_pop_us - p.chunk_enqueued_us);
              }
            }
            GatewayEvent g;
            g.gateway_id = cfg_.gateway_id;
            g.channel = ch;
            g.sf = sf;
            g.stream_offset = ev.stream_offset;
            g.trace_id = ev.trace_id;
            g.user = ev.user;
            aggregator_.add(std::move(g));
          });
      pipelines_.push_back(std::move(pl));
    }
  }

  scratch_.resize(cfg_.n_channels);
  threads_.reserve(cfg_.n_workers);
  for (std::size_t w = 0; w < cfg_.n_workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

GatewayRuntime::~GatewayRuntime() {
  if (!stopped_) stop();
}

void GatewayRuntime::push(const cvec& wideband_chunk) {
  if (stopped_)
    throw std::logic_error("GatewayRuntime: push after stop");
  CHOIR_OBS_TIMED_SCOPE("gateway.push.us");
  stats_.add_samples(wideband_chunk.size());
  for (auto& s : scratch_) s.clear();
  channelizer_.push(wideband_chunk, scratch_);

  const std::size_t n_sfs = cfg_.sfs.size();
  for (std::size_t ch = 0; ch < cfg_.n_channels; ++ch) {
    if (scratch_[ch].empty()) continue;
    // One immutable buffer per channel, shared by all its SF pipelines.
    auto chunk = std::make_shared<const cvec>(std::move(scratch_[ch]));
    scratch_[ch] = cvec{};
    for (std::size_t s = 0; s < n_sfs; ++s) {
      const std::size_t idx = ch * n_sfs + s;
      WorkItem item;
      item.pipeline = idx;
      item.chunk = chunk;
      if constexpr (obs::kEnabled) {
        item.enqueued = obs::Clock::now();
        item.enqueued_us = obs::trace_now_us();
        item.enqueue_tid = obs::current_tid();
      }
      if (queues_[pipelines_[idx].worker]->push(std::move(item))) {
        stats_.add_chunk();
      }
      // A failed push under kDropNewest is counted by the queue itself.
    }
  }
}

std::vector<GatewayEvent> GatewayRuntime::stop() {
  if (stopped_) return {};
  stopped_ = true;
  for (auto& q : queues_) q->close();
  for (auto& t : threads_) t.join();
  if constexpr (obs::kEnabled) {
    // Final queue tallies — high-water marks and drop counts only settle
    // once the workers have drained.
    std::uint64_t dropped = 0;
    for (const auto& q : queues_) {
      CHOIR_OBS_GAUGE_MAX("gateway.queue.high_water",
                          static_cast<std::int64_t>(q->high_water()));
      dropped += q->dropped();
    }
    stats_.add_dropped(dropped);
  }
  auto events = aggregator_.drain_ordered();
  if constexpr (obs::kEnabled) {
    // The ordered drain is the end of every surviving frame's pipeline:
    // stamp it and close the trace.
    const double now = obs::trace_now_us();
    for (const auto& ev : events) {
      if (ev.trace_id == 0) continue;
      obs::trace_log().add_stage(ev.trace_id, "gateway.drain", now, 0.0);
      obs::trace_log().complete(ev.trace_id);
    }
  }
  return events;
}

void GatewayRuntime::worker_main(std::size_t w) {
  auto& queue = *queues_[w];
  while (auto item = queue.pop()) {
    Pipeline& pl = pipelines_[item->pipeline];
    if constexpr (obs::kEnabled) {
      CHOIR_OBS_HIST("gateway.queue.wait.us",
                     obs::elapsed_us(item->enqueued, obs::Clock::now()));
      pl.chunk_ts = item->enqueued;
      pl.chunk_enqueued_us = item->enqueued_us;
      pl.chunk_pop_us = obs::trace_now_us();
      pl.chunk_enqueue_tid = item->enqueue_tid;
    }
    pl.rx->push(*item->chunk);
  }
  // Queue closed and drained: end-of-stream for every pipeline we own.
  for (auto& pl : pipelines_) {
    if (pl.worker != w) continue;
    pl.rx->flush();
    stats_.add_decode_attempts(pl.rx->decode_attempts());
  }
}

GatewayCounters GatewayRuntime::counters() const {
  GatewayCounters c = stats_.snapshot();
  c.chunks_dropped = 0;
  c.queue_high_water.reserve(queues_.size());
  for (const auto& q : queues_) {
    c.queue_high_water.push_back(q->high_water());
    c.chunks_dropped += q->dropped();
  }
  return c;
}

}  // namespace choir::gateway
