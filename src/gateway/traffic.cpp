#include "gateway/traffic.hpp"

#include <stdexcept>

#include "channel/collision.hpp"
#include "dsp/fft.hpp"
#include "dsp/workspace.hpp"
#include "lora/frame.hpp"
#include "util/rng.hpp"

namespace choir::gateway {

cvec upconvert_channels(const std::vector<cvec>& channels) {
  const std::size_t k = channels.size();
  if (k < 2 || !dsp::is_pow2(k))
    throw std::invalid_argument("upconvert_channels: need pow2 >= 2 streams");
  std::size_t max_len = 0;
  for (const auto& c : channels) max_len = std::max(max_len, c.size());
  if (max_len == 0)
    throw std::invalid_argument("upconvert_channels: all streams empty");

  const std::size_t len = dsp::next_pow2(max_len);
  const std::size_t wide_len = k * len;
  cvec spectrum(wide_len, cplx{0.0, 0.0});
  const double gain = static_cast<double>(k);
  auto sub_lease = dsp::DspWorkspace::tls().cbuf(len);
  cvec& sub = *sub_lease;
  for (std::size_t ch = 0; ch < k; ++ch) {
    if (channels[ch].empty()) continue;
    dsp::fft_padded_into(channels[ch], len, sub);
    for (std::size_t b = 0; b < len; ++b) {
      // Signed baseband bin, so each channel's negative frequencies land
      // just below its center rather than on top of its upper neighbour.
      const std::ptrdiff_t sb =
          b < len / 2 ? static_cast<std::ptrdiff_t>(b)
                      : static_cast<std::ptrdiff_t>(b) -
                            static_cast<std::ptrdiff_t>(len);
      std::ptrdiff_t idx = static_cast<std::ptrdiff_t>(ch * len) + sb;
      if (idx < 0) idx += static_cast<std::ptrdiff_t>(wide_len);
      spectrum[static_cast<std::size_t>(idx)] += gain * sub[b];
    }
  }
  return dsp::ifft(spectrum);
}

WidebandCapture generate_traffic(const TrafficConfig& cfg) {
  if (cfg.payload_bytes < 2)
    throw std::invalid_argument("generate_traffic: payload_bytes >= 2");
  if (cfg.stamp_device_headers && cfg.payload_bytes < 3)
    throw std::invalid_argument(
        "generate_traffic: stamp_device_headers needs payload_bytes >= 3");
  if (cfg.frames_per_channel == 0)
    throw std::invalid_argument("generate_traffic: frames_per_channel");
  cfg.phy.validate();

  Rng rng(cfg.seed);
  WidebandCapture cap;
  const double sym_s = cfg.phy.symbol_duration_s();
  const double frame_s =
      static_cast<double>(cfg.phy.preamble_len + cfg.phy.sfd_len +
                          lora::frame_symbol_count(cfg.payload_bytes, cfg.phy)) *
      sym_s;

  std::vector<cvec> basebands(cfg.n_channels);
  for (std::size_t ch = 0; ch < cfg.n_channels; ++ch) {
    std::vector<channel::TxInstance> txs;
    double t = rng.uniform(2.0, 6.0) * sym_s;
    for (std::size_t f = 0; f < cfg.frames_per_channel; ++f) {
      channel::TxInstance tx;
      tx.phy = cfg.phy;
      tx.payload.resize(cfg.payload_bytes);
      tx.payload[0] = static_cast<std::uint8_t>(ch & 0xFF);
      tx.payload[1] = static_cast<std::uint8_t>(f & 0xFF);
      for (std::size_t b = 2; b < cfg.payload_bytes; ++b)
        tx.payload[b] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      if (cfg.stamp_device_headers) {
        // Compact header: one synthetic device per frame, deterministic in
        // the capture ordinal, so same-seed captures collide byte-for-byte.
        const std::size_t ordinal = cap.frames.size();
        tx.payload[0] = static_cast<std::uint8_t>(ordinal & 0xFF);
        tx.payload[1] = static_cast<std::uint8_t>((ordinal >> 8) & 0xFF);
        tx.payload[2] = static_cast<std::uint8_t>((ordinal >> 16) & 0xFF);
      }
      tx.hw = channel::DeviceHardware::sample(cfg.osc, rng);
      tx.snr_db = rng.uniform(cfg.snr_db_min, cfg.snr_db_max);
      tx.fading.kind = channel::FadingKind::kNone;
      tx.extra_delay_s = t;

      TrafficFrame truth;
      truth.channel = ch;
      truth.payload = tx.payload;
      truth.start_s = t;
      cap.frames.push_back(std::move(truth));

      t += frame_s + rng.exponential(cfg.gap_symbols_mean * sym_s);
      txs.push_back(std::move(tx));
    }

    channel::RenderOptions ropt;
    ropt.osc = cfg.osc;
    ropt.add_noise = false;
    ropt.tail_s = 4.0 * sym_s;
    basebands[ch] = render_collision(txs, ropt, rng).samples;
  }

  cap.samples = upconvert_channels(basebands);
  cap.sample_rate_hz =
      cfg.phy.sample_rate_hz() * static_cast<double>(cfg.n_channels);
  if (cfg.add_noise) {
    // Variance K at the wideband rate leaves ~unit variance per channel
    // after the channelizer's unit-gain 1/K-band lowpass, matching the
    // per-sample SNR convention of channel::render_collision.
    const double variance = static_cast<double>(cfg.n_channels);
    for (auto& s : cap.samples) s += rng.cgaussian(variance);
  }
  return cap;
}

}  // namespace choir::gateway
