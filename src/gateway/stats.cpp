#include "gateway/stats.hpp"

#include <algorithm>
#include <cstdio>

#include "gateway/spsc_queue.hpp"

namespace choir::gateway {

GatewayStats::GatewayStats() {
  if constexpr (obs::kEnabled) {
    auto& r = obs::registry();
    reg_samples_ = &r.counter("gateway.wideband_samples_in");
    reg_chunks_ = &r.counter("gateway.chunks_enqueued");
    reg_frames_ = &r.counter("gateway.frames_decoded");
    reg_crc_fail_ = &r.counter("gateway.crc_failures");
    reg_attempts_ = &r.counter("gateway.decode_attempts");
    reg_dropped_ = &r.counter("gateway.chunks_dropped");
  }
}

std::size_t GatewayCounters::max_queue_high_water() const {
  std::size_t m = 0;
  for (std::size_t h : queue_high_water) m = std::max(m, h);
  return m;
}

std::string format_counters(const GatewayCounters& c) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "  wideband samples in : %llu\n"
                "  chunks enqueued     : %llu (%llu dropped)\n"
                "  decode attempts     : %llu\n"
                "  frames decoded      : %llu (%llu CRC failures)\n",
                static_cast<unsigned long long>(c.wideband_samples_in),
                static_cast<unsigned long long>(c.chunks_enqueued),
                static_cast<unsigned long long>(c.chunks_dropped),
                static_cast<unsigned long long>(c.decode_attempts),
                static_cast<unsigned long long>(c.frames_decoded),
                static_cast<unsigned long long>(c.crc_failures));
  out = buf;
  std::snprintf(buf, sizeof(buf), "  queue high water    : %zu of [",
                c.max_queue_high_water());
  out += buf;
  for (std::size_t i = 0; i < c.queue_high_water.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%s%zu", i ? " " : "",
                  c.queue_high_water[i]);
    out += buf;
  }
  out += "]\n";
  return out;
}

const char* overflow_policy_name(OverflowPolicy p) {
  switch (p) {
    case OverflowPolicy::kBlock: return "block";
    case OverflowPolicy::kDropNewest: return "drop";
  }
  return "?";
}

}  // namespace choir::gateway
