#include "coding/gray.hpp"

namespace choir::coding {

std::uint32_t gray_encode(std::uint32_t v) { return v ^ (v >> 1); }

std::uint32_t gray_decode(std::uint32_t g) {
  std::uint32_t v = g;
  for (std::uint32_t shift = 1; shift < 32; shift <<= 1) v ^= v >> shift;
  return v;
}

}  // namespace choir::coding
