// Full LoRa coding chain: bytes <-> chirp symbol values.
//
// Transmit direction:
//   payload bytes -> whitening -> nibbles -> Hamming(4,4+CR) codewords
//   -> diagonal interleave (blocks of SF codewords -> 4+CR symbols)
//   -> Gray mapping -> symbol values in [0, 2^SF).
//
// The receive direction inverts each stage and reports how many codewords
// were corrected or flagged as uncorrectable.
#pragma once

#include <cstdint>
#include <vector>

namespace choir::coding {

struct CodecParams {
  int sf = 7;  ///< spreading factor: bits per symbol, in [6, 12]
  int cr = 3;  ///< coding rate index: codewords are 4+cr bits, in [1, 4]
};

struct DecodeStats {
  int corrected_codewords = 0;
  int failed_codewords = 0;
  bool ok() const { return failed_codewords == 0; }
};

/// Number of chirp symbols needed to carry `n_bytes` of payload.
std::size_t symbols_for_payload(std::size_t n_bytes, const CodecParams& p);

/// Encodes payload bytes into chirp symbol values (with zero padding to a
/// whole number of interleaver blocks).
std::vector<std::uint32_t> encode_payload(const std::vector<std::uint8_t>& bytes,
                                          const CodecParams& p);

/// Decodes chirp symbol values back into `n_bytes` payload bytes.
/// `symbols.size()` must equal `symbols_for_payload(n_bytes, p)`.
std::vector<std::uint8_t> decode_payload(const std::vector<std::uint32_t>& symbols,
                                         std::size_t n_bytes,
                                         const CodecParams& p,
                                         DecodeStats* stats = nullptr);

}  // namespace choir::coding
