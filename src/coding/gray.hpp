// Gray code mapping.
//
// LoRa maps interleaved codeword bits to chirp symbol values through a Gray
// code so that the most likely demodulation error — an off-by-one FFT bin —
// corrupts only a single bit, which the Hamming FEC can then repair.
#pragma once

#include <cstdint>

namespace choir::coding {

/// Binary-reflected Gray encoding of v.
std::uint32_t gray_encode(std::uint32_t v);

/// Inverse of gray_encode.
std::uint32_t gray_decode(std::uint32_t g);

}  // namespace choir::coding
