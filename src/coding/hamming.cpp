#include "coding/hamming.hpp"

#include <stdexcept>

namespace choir::coding {

namespace {

inline int bit(std::uint8_t v, int i) { return (v >> i) & 1; }

// Codeword bit layout (LSB first):
//   bit 0..2 : parity p0, p1, p2 (as many as cr provides)
//   bit cr.. : data nibble d0..d3
// For cr=4 the extended parity occupies bit 7.

std::uint8_t encode47(std::uint8_t nibble) {
  const int d0 = bit(nibble, 0), d1 = bit(nibble, 1);
  const int d2 = bit(nibble, 2), d3 = bit(nibble, 3);
  const int p0 = d0 ^ d1 ^ d3;
  const int p1 = d0 ^ d2 ^ d3;
  const int p2 = d1 ^ d2 ^ d3;
  return static_cast<std::uint8_t>(p0 | (p1 << 1) | (p2 << 2) | (d0 << 3) |
                                   (d1 << 4) | (d2 << 5) | (d3 << 6));
}

HammingDecodeResult decode47(std::uint8_t cw) {
  const int p0 = bit(cw, 0), p1 = bit(cw, 1), p2 = bit(cw, 2);
  const int d0 = bit(cw, 3), d1 = bit(cw, 4), d2 = bit(cw, 5),
            d3 = bit(cw, 6);
  const int s0 = p0 ^ d0 ^ d1 ^ d3;
  const int s1 = p1 ^ d0 ^ d2 ^ d3;
  const int s2 = p2 ^ d1 ^ d2 ^ d3;
  const int syndrome = s0 | (s1 << 1) | (s2 << 2);
  // Syndrome -> bit index in the layout above.
  static constexpr int kSyndromeToBit[8] = {-1, 0, 1, 3, 2, 4, 5, 6};
  HammingDecodeResult r;
  std::uint8_t fixed = cw;
  if (syndrome != 0) {
    fixed = static_cast<std::uint8_t>(cw ^ (1u << kSyndromeToBit[syndrome]));
    r.corrected = true;
  }
  r.nibble = static_cast<std::uint8_t>((fixed >> 3) & 0xF);
  return r;
}

}  // namespace

std::uint8_t hamming_encode(std::uint8_t nibble, int cr) {
  if (cr < 1 || cr > 4) throw std::invalid_argument("hamming_encode: cr");
  nibble &= 0xF;
  switch (cr) {
    case 1: {
      const int p = bit(nibble, 0) ^ bit(nibble, 1) ^ bit(nibble, 2) ^
                    bit(nibble, 3);
      return static_cast<std::uint8_t>(p | (nibble << 1));
    }
    case 2: {
      const int p0 = bit(nibble, 0) ^ bit(nibble, 1) ^ bit(nibble, 2);
      const int p1 = bit(nibble, 1) ^ bit(nibble, 2) ^ bit(nibble, 3);
      return static_cast<std::uint8_t>(p0 | (p1 << 1) | (nibble << 2));
    }
    case 3:
      return encode47(nibble);
    case 4: {
      const std::uint8_t cw7 = encode47(nibble);
      int parity = 0;
      for (int i = 0; i < 7; ++i) parity ^= bit(cw7, i);
      return static_cast<std::uint8_t>(cw7 | (parity << 7));
    }
  }
  return 0;  // unreachable
}

HammingDecodeResult hamming_decode(std::uint8_t codeword, int cr) {
  if (cr < 1 || cr > 4) throw std::invalid_argument("hamming_decode: cr");
  switch (cr) {
    case 1: {
      HammingDecodeResult r;
      r.nibble = static_cast<std::uint8_t>((codeword >> 1) & 0xF);
      int parity = 0;
      for (int i = 0; i < 5; ++i) parity ^= bit(codeword, i);
      r.detected_error = parity != 0;
      return r;
    }
    case 2: {
      HammingDecodeResult r;
      r.nibble = static_cast<std::uint8_t>((codeword >> 2) & 0xF);
      const int p0 = bit(r.nibble, 0) ^ bit(r.nibble, 1) ^ bit(r.nibble, 2);
      const int p1 = bit(r.nibble, 1) ^ bit(r.nibble, 2) ^ bit(r.nibble, 3);
      r.detected_error = p0 != bit(codeword, 0) || p1 != bit(codeword, 1);
      return r;
    }
    case 3:
      return decode47(static_cast<std::uint8_t>(codeword & 0x7F));
    case 4: {
      int overall = 0;
      for (int i = 0; i < 8; ++i) overall ^= bit(codeword, i);
      HammingDecodeResult r7 = decode47(static_cast<std::uint8_t>(codeword & 0x7F));
      HammingDecodeResult r;
      r.nibble = r7.nibble;
      if (overall == 0 && r7.corrected) {
        // Even overall parity but nonzero syndrome: two errors, cannot fix.
        r.detected_error = true;
        r.corrected = false;
        // Best-effort nibble from the (wrong) correction is still returned.
      } else if (overall != 0) {
        // Odd parity: a single error somewhere (possibly the parity bit);
        // the (7,4) correction already repaired it if it hit bits 0..6.
        r.corrected = true;
      }
      return r;
    }
  }
  return {};  // unreachable
}

}  // namespace choir::coding
