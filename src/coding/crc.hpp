// CRC-16/CCITT payload integrity check, as carried in the LoRa frame.
#pragma once

#include <cstdint>
#include <span>

namespace choir::coding {

/// CRC-16/CCITT-FALSE: poly 0x1021, init 0xFFFF, no reflection, no xorout.
std::uint16_t crc16(std::span<const std::uint8_t> data);

}  // namespace choir::coding
