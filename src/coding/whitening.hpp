// Data whitening.
//
// LoRa XORs the payload with a fixed LFSR sequence so the on-air bit stream
// is balanced regardless of payload content. Whitening is an involution:
// applying it twice restores the original bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace choir::coding {

/// XORs `data` in place with the whitening sequence starting from the
/// standard seed. Call again to un-whiten.
void whiten(std::vector<std::uint8_t>& data);

/// Returns the first `n` bytes of the whitening sequence (for tests).
std::vector<std::uint8_t> whitening_sequence(std::size_t n);

}  // namespace choir::coding
