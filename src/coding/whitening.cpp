#include "coding/whitening.hpp"

namespace choir::coding {

namespace {

// Galois LFSR with polynomial x^8 + x^6 + x^5 + x^4 + 1 (0xB8 reflected
// taps), seeded with all ones — the sequence used by SX127x-family radios.
class Lfsr {
 public:
  std::uint8_t next() {
    const std::uint8_t out = state_;
    for (int i = 0; i < 8; ++i) {
      const bool lsb = state_ & 1;
      state_ >>= 1;
      if (lsb) state_ ^= 0xB8;
    }
    return out;
  }

 private:
  std::uint8_t state_ = 0xFF;
};

}  // namespace

void whiten(std::vector<std::uint8_t>& data) {
  Lfsr lfsr;
  for (auto& b : data) b ^= lfsr.next();
}

std::vector<std::uint8_t> whitening_sequence(std::size_t n) {
  Lfsr lfsr;
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = lfsr.next();
  return out;
}

}  // namespace choir::coding
