// LoRa-style Hamming forward error correction over 4-bit nibbles.
//
// LoRa's coding rate CR in {1,2,3,4} maps each data nibble to a codeword of
// 4+CR bits:
//   CR=1: (4,5) single parity        — detect 1 error
//   CR=2: (4,6) two parity bits      — detect 1 error (stronger)
//   CR=3: (4,7) classic Hamming(7,4) — correct 1 error
//   CR=4: (4,8) extended Hamming     — correct 1, detect 2
#pragma once

#include <cstdint>

namespace choir::coding {

struct HammingDecodeResult {
  std::uint8_t nibble = 0;   ///< decoded 4-bit value
  bool corrected = false;    ///< a single-bit error was repaired
  bool detected_error = false;  ///< uncorrectable/unrepaired error seen
};

/// Encodes a 4-bit nibble into a (4, 4+cr) codeword; cr in [1,4].
std::uint8_t hamming_encode(std::uint8_t nibble, int cr);

/// Decodes a (4, 4+cr) codeword.
HammingDecodeResult hamming_decode(std::uint8_t codeword, int cr);

/// Number of coded bits per nibble for a coding rate.
inline int codeword_bits(int cr) { return 4 + cr; }

}  // namespace choir::coding
