#include "coding/crc.hpp"

namespace choir::coding {

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int i = 0; i < 8; ++i) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

}  // namespace choir::coding
