#include "coding/codec.hpp"

#include <stdexcept>

#include "coding/gray.hpp"
#include "coding/hamming.hpp"
#include "coding/interleaver.hpp"
#include "coding/whitening.hpp"

namespace choir::coding {

namespace {

void check_params(const CodecParams& p) {
  if (p.sf < 6 || p.sf > 12) throw std::invalid_argument("codec: sf");
  if (p.cr < 1 || p.cr > 4) throw std::invalid_argument("codec: cr");
}

std::size_t blocks_for_payload(std::size_t n_bytes, const CodecParams& p) {
  const std::size_t nibbles = 2 * n_bytes;
  const std::size_t per_block = static_cast<std::size_t>(p.sf);
  return (nibbles + per_block - 1) / per_block;
}

}  // namespace

std::size_t symbols_for_payload(std::size_t n_bytes, const CodecParams& p) {
  check_params(p);
  return blocks_for_payload(n_bytes, p) * static_cast<std::size_t>(4 + p.cr);
}

std::vector<std::uint32_t> encode_payload(const std::vector<std::uint8_t>& bytes,
                                          const CodecParams& p) {
  check_params(p);
  std::vector<std::uint8_t> white = bytes;
  whiten(white);

  // Split into nibbles, low nibble first.
  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(2 * white.size());
  for (std::uint8_t b : white) {
    nibbles.push_back(static_cast<std::uint8_t>(b & 0xF));
    nibbles.push_back(static_cast<std::uint8_t>(b >> 4));
  }
  const std::size_t blocks = blocks_for_payload(bytes.size(), p);
  nibbles.resize(blocks * static_cast<std::size_t>(p.sf), 0);

  std::vector<std::uint32_t> out;
  out.reserve(symbols_for_payload(bytes.size(), p));
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    std::vector<std::uint8_t> codewords(static_cast<std::size_t>(p.sf));
    for (int i = 0; i < p.sf; ++i) {
      codewords[static_cast<std::size_t>(i)] = hamming_encode(
          nibbles[blk * static_cast<std::size_t>(p.sf) +
                  static_cast<std::size_t>(i)],
          p.cr);
    }
    for (std::uint32_t g : interleave(codewords, p.sf, p.cr)) {
      out.push_back(gray_decode(g) & ((1u << p.sf) - 1u));
    }
  }
  return out;
}

std::vector<std::uint8_t> decode_payload(const std::vector<std::uint32_t>& symbols,
                                         std::size_t n_bytes,
                                         const CodecParams& p,
                                         DecodeStats* stats) {
  check_params(p);
  const std::size_t expect = symbols_for_payload(n_bytes, p);
  if (symbols.size() != expect)
    throw std::invalid_argument("decode_payload: symbol count mismatch");
  DecodeStats local;
  const std::size_t blocks = blocks_for_payload(n_bytes, p);
  const std::size_t syms_per_block = static_cast<std::size_t>(4 + p.cr);

  std::vector<std::uint8_t> nibbles;
  nibbles.reserve(blocks * static_cast<std::size_t>(p.sf));
  for (std::size_t blk = 0; blk < blocks; ++blk) {
    std::vector<std::uint32_t> grays(syms_per_block);
    for (std::size_t j = 0; j < syms_per_block; ++j) {
      grays[j] = gray_encode(symbols[blk * syms_per_block + j]) &
                 ((1u << p.sf) - 1u);
    }
    for (std::uint8_t cw : deinterleave(grays, p.sf, p.cr)) {
      const HammingDecodeResult r = hamming_decode(cw, p.cr);
      if (r.corrected) ++local.corrected_codewords;
      if (r.detected_error) ++local.failed_codewords;
      nibbles.push_back(r.nibble);
    }
  }

  std::vector<std::uint8_t> bytes(n_bytes);
  for (std::size_t i = 0; i < n_bytes; ++i) {
    bytes[i] = static_cast<std::uint8_t>(nibbles[2 * i] |
                                         (nibbles[2 * i + 1] << 4));
  }
  whiten(bytes);  // un-whiten (involution)
  if (stats != nullptr) *stats = local;
  return bytes;
}

}  // namespace choir::coding
