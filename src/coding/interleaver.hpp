// Diagonal interleaver.
//
// LoRa interleaves blocks of SF codewords (each 4+CR bits) into 4+CR chirp
// symbols of SF bits each, along diagonals. A burst error that wipes out one
// whole symbol (e.g. a collision on one chirp) then spreads into exactly one
// bit error per codeword — which Hamming(4,7)/(4,8) can correct.
#pragma once

#include <cstdint>
#include <vector>

namespace choir::coding {

/// Interleaves `sf` codewords of `4+cr` bits into `4+cr` symbols of `sf`
/// bits. codewords.size() must equal sf.
std::vector<std::uint32_t> interleave(const std::vector<std::uint8_t>& codewords,
                                      int sf, int cr);

/// Inverse of `interleave`: symbols.size() must equal 4+cr; returns sf
/// codewords.
std::vector<std::uint8_t> deinterleave(const std::vector<std::uint32_t>& symbols,
                                       int sf, int cr);

}  // namespace choir::coding
