#include "coding/interleaver.hpp"

#include <stdexcept>

namespace choir::coding {

namespace {

void check(int sf, int cr) {
  if (sf < 1 || sf > 16) throw std::invalid_argument("interleaver: sf");
  if (cr < 1 || cr > 4) throw std::invalid_argument("interleaver: cr");
}

}  // namespace

std::vector<std::uint32_t> interleave(const std::vector<std::uint8_t>& codewords,
                                      int sf, int cr) {
  check(sf, cr);
  if (codewords.size() != static_cast<std::size_t>(sf))
    throw std::invalid_argument("interleave: need sf codewords");
  const int nbits = 4 + cr;
  std::vector<std::uint32_t> symbols(static_cast<std::size_t>(nbits), 0);
  // Symbol j, bit i takes bit j of codeword (i + j) mod sf — a diagonal
  // walk so consecutive bits of one codeword land in different symbols.
  for (int j = 0; j < nbits; ++j) {
    std::uint32_t sym = 0;
    for (int i = 0; i < sf; ++i) {
      const int cw = (i + j) % sf;
      const std::uint32_t b =
          (static_cast<std::uint32_t>(codewords[static_cast<std::size_t>(cw)]) >> j) & 1u;
      sym |= b << i;
    }
    symbols[static_cast<std::size_t>(j)] = sym;
  }
  return symbols;
}

std::vector<std::uint8_t> deinterleave(const std::vector<std::uint32_t>& symbols,
                                       int sf, int cr) {
  check(sf, cr);
  const int nbits = 4 + cr;
  if (symbols.size() != static_cast<std::size_t>(nbits))
    throw std::invalid_argument("deinterleave: need 4+cr symbols");
  std::vector<std::uint8_t> codewords(static_cast<std::size_t>(sf), 0);
  for (int j = 0; j < nbits; ++j) {
    const std::uint32_t sym = symbols[static_cast<std::size_t>(j)];
    for (int i = 0; i < sf; ++i) {
      const int cw = (i + j) % sf;
      const std::uint32_t b = (sym >> i) & 1u;
      codewords[static_cast<std::size_t>(cw)] =
          static_cast<std::uint8_t>(codewords[static_cast<std::size_t>(cw)] |
                                    (b << j));
    }
  }
  return codewords;
}

}  // namespace choir::coding
