// Multi-user aggregate-offset estimation from colliding preambles
// (paper Sec. 5.1-5.2, Algorithm 1).
//
// Pipeline per collision:
//   1. Accumulate zero-padded dechirped power spectra over the preamble
//      windows — every colliding user contributes one sinc main lobe at its
//      aggregate offset.
//   2. Phased successive interference cancellation: detect the cohort of
//      *strong* peaks, jointly refine their offsets by minimizing the
//      least-squares residual (coordinate descent with golden-section line
//      searches, exploiting local convexity), subtract their reconstruction,
//      then re-detect weaker users buried under the strong users' leakage.
//   3. Average the per-window channels (after de-rotating the deterministic
//      window-to-window phase advance) into one channel estimate per user.
#pragma once

#include <vector>

#include "lora/params.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace choir::core {

/// Estimated identity of one colliding transmitter.
struct UserEstimate {
  double offset_bins = 0.0;  ///< aggregate offset lambda = cfo - tau, [0, N)
  cplx channel;              ///< averaged complex channel
  double magnitude = 0.0;    ///< |channel|
  double snr_db = 0.0;       ///< per-sample SNR estimate of this user
  double window_phase_step = 0.0;  ///< channel rotation per symbol window
  /// Timing offset in samples, split out of the aggregate using the SFD
  /// down-chirps (whose peak sits at cfo + tau instead of cfo - tau).
  double timing_samples = 0.0;
  double cfo_bins = 0.0;  ///< carrier offset component, = offset + timing
};

struct EstimatorOptions {
  std::size_t oversample = 16;   ///< FFT zero-padding factor (pow2)
  double detect_factor = 5.0;    ///< peak > factor * accumulated noise floor
  std::size_t max_users = 16;
  double refine_radius_bins = 0.6;  ///< descent trust region (coarse err < 1)
  int descent_cycles = 6;        ///< cycles of the final polish pass
  int refine_windows = 6;        ///< preamble windows used in the residual
  /// Peaks closer than this (in bins) are treated as one user: below this
  /// separation the tones are not identifiable within a preamble.
  double min_user_separation_bins = 0.2;
  /// Users whose fitted per-sample SINR falls below this are discarded as
  /// refinement ghosts. The reference noise floor includes residual leakage
  /// from strong users (their sub-sample fold scatter), so genuine weak
  /// users in a deep near-far collision measure several dB below their
  /// thermal SNR — the gate sits well under the weakest decodable user.
  /// (Below-noise *teams* are the TeamDecoder's job.)
  double min_user_snr_db = -7.0;
  /// Skip the first preamble window: transmitters start mid-window by their
  /// timing offsets, so window 0 mixes silence with the first chirp.
  bool skip_first_window = true;
};

class OffsetEstimator {
 public:
  OffsetEstimator(const lora::PhyParams& phy, const EstimatorOptions& opt);

  /// Estimates all discernible users from dechirped preamble windows
  /// (each of length 2^sf). Returns estimates sorted by descending
  /// magnitude.
  std::vector<UserEstimate> estimate(const std::vector<cvec>& preamble) const;

  /// Per-window least-squares channels at fixed offsets (column i = user i),
  /// one cvec per window. Exposed for the decoder and for SIC.
  std::vector<cvec> window_channels(const std::vector<cvec>& windows,
                                    const std::vector<double>& offsets) const;

  const EstimatorOptions& options() const { return opt_; }

 private:
  /// Coarse peak positions (bins) of the accumulated power spectrum.
  /// Peaks more than `cohort_db` below the strongest are dropped.
  std::vector<double> coarse_peaks(const std::vector<cvec>& windows,
                                   double* noise_out, double* max_mag_out,
                                   std::size_t limit,
                                   double cohort_db = 200.0) const;

  lora::PhyParams phy_;
  EstimatorOptions opt_;
};

}  // namespace choir::core
