#include "core/residual.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "dsp/simd/simd.hpp"
#include "obs/obs.hpp"

namespace choir::core {

namespace {

// One off-diagonal Gram entry in closed form:
//   sum_n exp(j*2*pi*delta*n/N)
// is a geometric series — O(1) trig instead of O(N).
cplx gram_cross_entry(double delta, double dn) {
  const double step = kTwoPi * delta / dn;
  if (std::abs(std::sin(step / 2.0)) < 1e-12) return cplx{dn, 0.0};
  return (cis(kTwoPi * delta) - 1.0) / (cis(step) - 1.0);
}

// Gram matrix of the tone dictionary in closed form: O(K^2) trig instead
// of O(N*K^2).
CMatrix tone_gram(const std::vector<double>& offsets, std::size_t n) {
  const std::size_t k = offsets.size();
  const double dn = static_cast<double>(n);
  // Small ridge term: when two candidate offsets nearly coincide the plain
  // normal equations blow up into huge opposing amplitudes; the ridge caps
  // them at physically meaningful values without biasing well-separated
  // fits (regularization is 0.3% of the tone energy).
  const double ridge = 3e-3 * dn;
  CMatrix g(k, k);
  for (std::size_t i = 0; i < k; ++i) {
    g(i, i) = cplx{dn + ridge, 0.0};
    for (std::size_t j = i + 1; j < k; ++j) {
      const cplx sum = gram_cross_entry(offsets[j] - offsets[i], dn);
      g(i, j) = sum;
      g(j, i) = std::conj(sum);
    }
  }
  return g;
}

// b_i = sum_n y[n] * exp(-j*2*pi*off_i*n/N): a direct DFT at an arbitrary
// frequency, evaluated with a phasor recurrence (one cis per user).
cvec tone_projections(const cvec& y, const std::vector<double>& offsets) {
  const std::size_t n = y.size();
  cvec b(offsets.size());
  const auto& ops = dsp::simd::active();
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    const cplx step = cis(-kTwoPi * offsets[i] / static_cast<double>(n));
    b[i] = ops.phasor_dot(y.data(), n, cplx{1.0, 0.0}, step);
  }
  return b;
}

}  // namespace

CMatrix tone_matrix(const std::vector<double>& offsets_bins,
                    std::size_t n_samples) {
  if (offsets_bins.empty())
    throw std::invalid_argument("tone_matrix: no offsets");
  CMatrix e(n_samples, offsets_bins.size());
  for (std::size_t c = 0; c < offsets_bins.size(); ++c) {
    const cplx step =
        cis(kTwoPi * offsets_bins[c] / static_cast<double>(n_samples));
    cplx ph{1.0, 0.0};
    for (std::size_t n = 0; n < n_samples; ++n) {
      e(n, c) = ph;
      ph *= step;
    }
  }
  return e;
}

cvec fit_channels(const cvec& dechirped,
                  const std::vector<double>& offsets_bins) {
  if (offsets_bins.empty())
    throw std::invalid_argument("fit_channels: no offsets");
  const CMatrix g = tone_gram(offsets_bins, dechirped.size());
  const cvec b = tone_projections(dechirped, offsets_bins);
  return solve_linear(g, b);
}

double residual_power(const cvec& dechirped,
                      const std::vector<double>& offsets_bins) {
  const CMatrix g = tone_gram(offsets_bins, dechirped.size());
  const cvec b = tone_projections(dechirped, offsets_bins);
  cvec h;
  try {
    h = solve_linear(g, b);
  } catch (const std::runtime_error&) {
    // Degenerate offsets (two users at the same bin) -> infinite-cost
    // candidate so the optimizer steps away from it.
    return std::numeric_limits<double>::infinity();
  }
  const double y2 =
      dsp::simd::active().energy(dechirped.data(), dechirped.size());
  // ||y - E h||^2 = ||y||^2 - Re(b^H h) when h solves the normal equations.
  double fit = 0.0;
  for (std::size_t i = 0; i < h.size(); ++i) {
    fit += (std::conj(b[i]) * h[i]).real();
  }
  const double r = y2 - fit;
  return r > 0.0 ? r : 0.0;
}

double residual_power_multi(const std::vector<cvec>& windows,
                            const std::vector<double>& offsets_bins) {
  double acc = 0.0;
  for (const cvec& w : windows) acc += residual_power(w, offsets_bins);
  return acc;
}

std::vector<cvec> fit_channels_multi(const std::vector<cvec>& windows,
                                     const std::vector<double>& offsets_bins) {
  if (offsets_bins.empty())
    throw std::invalid_argument("fit_channels_multi: no offsets");
  std::vector<cvec> out;
  out.reserve(windows.size());
  if (windows.empty()) return out;
  const std::size_t n = windows.front().size();
  Cholesky chol;
  chol.factorize(tone_gram(offsets_bins, n));
  cvec b(offsets_bins.size());
  for (const cvec& w : windows) {
    b = tone_projections(w, offsets_bins);
    cvec h;
    chol.solve_into(b, h);
    out.push_back(std::move(h));
  }
  return out;
}

void subtract_tones(cvec& dechirped, const std::vector<double>& offsets_bins,
                    const cvec& channels) {
  if (offsets_bins.size() != channels.size())
    throw std::invalid_argument("subtract_tones: size mismatch");
  const cvec model =
      reconstruct_tones(offsets_bins, channels, dechirped.size());
  for (std::size_t n = 0; n < dechirped.size(); ++n) dechirped[n] -= model[n];
}

cvec reconstruct_tones(const std::vector<double>& offsets_bins,
                       const cvec& channels, std::size_t n_samples) {
  cvec out(n_samples, cplx{0.0, 0.0});
  const auto& ops = dsp::simd::active();
  for (std::size_t i = 0; i < offsets_bins.size(); ++i) {
    const cplx step =
        cis(kTwoPi * offsets_bins[i] / static_cast<double>(n_samples));
    ops.phasor_accumulate(out.data(), n_samples, channels[i], step);
  }
  return out;
}

ToneResidualEvaluator::ToneResidualEvaluator(const std::vector<cvec>& windows,
                                             std::vector<double> offsets)
    : windows_(windows), offsets_(std::move(offsets)) {
  if (windows_.empty())
    throw std::invalid_argument("ToneResidualEvaluator: no windows");
  window_energy_.reserve(windows_.size());
  const auto& ops = dsp::simd::active();
  for (const cvec& w : windows_)
    window_energy_.push_back(ops.energy(w.data(), w.size()));
  b_.resize(offsets_.size());
  for (std::size_t i = 0; i < offsets_.size(); ++i)
    project_into(offsets_[i], b_[i]);
  rebuild_gram();
}

void ToneResidualEvaluator::project_into(double offset,
                                         std::vector<cplx>& out) {
  const std::size_t n = windows_.front().size();
  // Build the phasor table once (the recurrence is a serial dependency
  // chain), then project each window with a plain complex dot product —
  // instead of re-running the recurrence per window. Both passes go
  // through the dispatched kernels.
  phasor_.resize(n);
  const auto& ops = dsp::simd::active();
  const cplx step = cis(-kTwoPi * offset / static_cast<double>(n));
  ops.phasor_table(phasor_.data(), n, cplx{1.0, 0.0}, step);
  out.resize(windows_.size());
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    out[w] = ops.cdot(windows_[w].data(), phasor_.data(), n);
  }
}

void ToneResidualEvaluator::rebuild_gram() {
  gram_ = tone_gram(offsets_, windows_.front().size());
}

void ToneResidualEvaluator::update_gram_cross(CMatrix& g, std::size_t i,
                                              double value) const {
  const double dn = static_cast<double>(windows_.front().size());
  for (std::size_t j = 0; j < offsets_.size(); ++j) {
    if (j == i) continue;
    // Entry (i, j) integrates exp(j*2*pi*(off_j - off_i)*n/N).
    const cplx sum = gram_cross_entry(offsets_[j] - value, dn);
    g(i, j) = sum;
    g(j, i) = std::conj(sum);
  }
}

double ToneResidualEvaluator::evaluate(const CMatrix& g, std::size_t changed) {
  CHOIR_OBS_COUNT("core.residual.evals", 1);
  const std::size_t k = offsets_.size();
  chol_.factorize(g);
  double total = 0.0;
  b_work_.resize(k);
  for (std::size_t w = 0; w < windows_.size(); ++w) {
    for (std::size_t u = 0; u < k; ++u) {
      b_work_[u] = (u == changed) ? changed_b_[w] : b_[u][w];
    }
    chol_.solve_into(b_work_, h_work_);
    double fit = 0.0;
    for (std::size_t u = 0; u < k; ++u) {
      fit += (std::conj(b_work_[u]) * h_work_[u]).real();
    }
    const double r = window_energy_[w] - fit;
    total += r > 0.0 ? r : 0.0;
  }
  return total;
}

double ToneResidualEvaluator::current() {
  return evaluate(gram_, static_cast<std::size_t>(-1));
}

double ToneResidualEvaluator::try_coordinate(std::size_t i, double value) {
  // O(K) Gram update on a copy of the cache + one projection pass; the
  // cached state stays pinned to offsets_.
  gram_work_ = gram_;
  update_gram_cross(gram_work_, i, value);
  project_into(value, changed_b_);
  return evaluate(gram_work_, i);
}

void ToneResidualEvaluator::set_coordinate(std::size_t i, double value) {
  offsets_.at(i) = value;
  project_into(value, b_[i]);
  update_gram_cross(gram_, i, value);
}

void ToneResidualEvaluator::add_tone(double value) {
  offsets_.push_back(value);
  b_.emplace_back();
  project_into(value, b_.back());
  // Growing the Gram reshapes the matrix; a full rebuild is O(K^2) trig
  // and happens once per added tone (rare next to try_coordinate calls).
  rebuild_gram();
}

double descend_offsets(ToneResidualEvaluator& eval, double radius, int cycles,
                       double tol) {
  CHOIR_OBS_COUNT("core.residual.descents", 1);
  double best = eval.current();
  static const double kInvPhi = (std::sqrt(5.0) - 1.0) / 2.0;
  for (int cycle = 0; cycle < cycles; ++cycle) {
    const double before = best;
    for (std::size_t i = 0; i < eval.dimensions(); ++i) {
      const double center = eval.offsets()[i];
      double a = center - radius, bnd = center + radius;
      double c = bnd - kInvPhi * (bnd - a);
      double d = a + kInvPhi * (bnd - a);
      double fc = eval.try_coordinate(i, c);
      double fd = eval.try_coordinate(i, d);
      while (bnd - a > tol) {
        if (fc < fd) {
          bnd = d;
          d = c;
          fd = fc;
          c = bnd - kInvPhi * (bnd - a);
          fc = eval.try_coordinate(i, c);
        } else {
          a = c;
          c = d;
          fc = fd;
          d = a + kInvPhi * (bnd - a);
          fd = eval.try_coordinate(i, d);
        }
      }
      const double x = fc < fd ? c : d;
      const double fx = std::min(fc, fd);
      if (fx < best) {
        eval.set_coordinate(i, x);
        best = fx;
      }
    }
    if (before - best < 1e-9) break;
  }
  return best;
}

}  // namespace choir::core
