// Clustering-based symbol-to-user mapping (paper Sec. 6.2).
//
// An alternative to the greedy per-window assignment inside
// CollisionDecoder: gather every FFT peak observed across the data windows,
// describe each by (fractional bin position, normalized magnitude), add
// cannot-link constraints between peaks of the same window (they must
// belong to distinct users), and cluster with the constrained k-means of
// src/cluster. Used to validate the assignment pipeline and exercised by
// the Sec. 6.2 bench.
//
// Caveat (see dsp/fold_tone.hpp): with a *fractional* timing offset the
// chirp fold inside each data window biases the apparent FFT peak position
// by a data-dependent fraction of a bin, so raw-peak fractional tracking is
// only reliable when transmitters are sampled near-coherently
// (frac(tau) ~ 0). The CollisionDecoder's fold-aware matched templates do
// not share this limitation — which is exactly why they exist.
#pragma once

#include <cstdint>
#include <vector>

#include "core/offset_estimator.hpp"
#include "lora/params.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace choir::core {

struct PeakObservation {
  std::size_t window = 0;  ///< data-window index
  double bin = 0.0;        ///< chirp-bin position (fractional)
  double magnitude = 0.0;  ///< peak magnitude
  double phase = 0.0;      ///< peak phase (radians)
};

struct TrackerOptions {
  std::size_t oversample = 16;
  double peak_detect_factor = 3.0;
  double magnitude_feature_weight = 0.15;
  int kmeans_restarts = 6;
};

class UserTracker {
 public:
  UserTracker(const lora::PhyParams& phy, const TrackerOptions& opt = {});

  /// Collects peak observations from `n_windows` data windows starting at
  /// sample `data_start`, keeping at most `max_peaks` peaks per window.
  std::vector<PeakObservation> collect(const cvec& rx, std::size_t data_start,
                                       std::size_t n_windows,
                                       std::size_t max_peaks) const;

  /// Clusters observations into k users. Returns cluster index per
  /// observation (aligned with `obs`).
  std::vector<int> cluster_users(const std::vector<PeakObservation>& obs,
                                 std::size_t k, Rng& rng) const;

  /// Reconstructs per-user symbol streams: cluster c's stream, indexed by
  /// window, using the cluster's own centroid fractional offset as lambda.
  /// Windows where a cluster has no observation get the sentinel 0xFFFFFFFF.
  std::vector<std::vector<std::uint32_t>> symbol_streams(
      const std::vector<PeakObservation>& obs,
      const std::vector<int>& assignment, std::size_t k,
      std::size_t n_windows) const;

 private:
  lora::PhyParams phy_;
  TrackerOptions opt_;
  cvec downchirp_;
};

}  // namespace choir::core
