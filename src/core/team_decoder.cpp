#include "core/team_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/residual.hpp"
#include "dsp/chirp.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "dsp/workspace.hpp"

namespace choir::core {

namespace {

cvec slice(const cvec& rx, std::size_t start, std::size_t n) {
  cvec out(n, cplx{0.0, 0.0});
  if (start >= rx.size()) return out;
  const std::size_t avail = std::min(n, rx.size() - start);
  std::copy(rx.begin() + static_cast<std::ptrdiff_t>(start),
            rx.begin() + static_cast<std::ptrdiff_t>(start + avail),
            out.begin());
  return out;
}

double circ_dist(double a, double b, double n) {
  double d = std::abs(std::fmod(std::fmod(a - b, n) + n, n));
  return std::min(d, n - d);
}

double median_of(rvec v) {
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  return v[v.size() / 2];
}

}  // namespace

TeamDecoder::TeamDecoder(const lora::PhyParams& phy,
                         const TeamDecoderOptions& opt)
    : phy_(phy), opt_(opt), downchirp_(dsp::base_downchirp(phy.chips())) {
  phy_.validate();
  if (!dsp::is_pow2(opt_.oversample))
    throw std::invalid_argument("TeamDecoder: oversample not pow2");
}

void TeamDecoder::accumulated_spectrum_into(const cvec& rx, std::size_t start,
                                            int windows, rvec& acc) const {
  const std::size_t n = phy_.chips();
  const std::size_t fftlen = n * opt_.oversample;
  acc.assign(fftlen, 0.0);
  auto spec = dsp::DspWorkspace::tls().cbuf(fftlen);
  for (int k = 0; k < windows; ++k) {
    dsp::dechirp_fft_power_acc(rx, start + static_cast<std::size_t>(k) * n,
                               downchirp_, fftlen, *spec, acc);
  }
}

double TeamDecoder::detection_score_at(const cvec& rx,
                                       std::size_t start) const {
  auto& pool = dsp::DspWorkspace::tls();
  auto acc_lease = pool.rbuf(0);
  auto scratch = pool.rbuf(0);
  rvec& acc = *acc_lease;
  accumulated_spectrum_into(rx, start, phy_.preamble_len, acc);
  const double floor = dsp::noise_floor_mag(acc, *scratch);
  const double peak = *std::max_element(acc.begin(), acc.end());
  return floor > 0.0 ? peak / floor : 0.0;
}

TeamDecodeResult TeamDecoder::decode(const cvec& rx, std::size_t start_hint,
                                     std::size_t search_radius) const {
  const std::size_t n = phy_.chips();
  const std::size_t step =
      std::max<std::size_t>(1, n / opt_.search_step_divisor);
  TeamDecodeResult res;

  const std::size_t lo =
      start_hint > search_radius ? start_hint - search_radius : 0;
  const std::size_t hi = start_hint + search_radius;
  double best_score = 0.0;
  std::size_t best_start = start_hint;
  for (std::size_t cand = lo; cand <= hi; cand += step) {
    const double score = detection_score_at(rx, cand);
    if (score > best_score) {
      best_score = score;
      best_start = cand;
    }
  }
  res.detection_score = best_score;
  if (best_score < opt_.detect_factor) {
    res.frame_start = best_start;
    return res;
  }
  // The preamble is self-similar under whole-symbol shifts AND the
  // accumulated-power score is insensitive to sub-symbol shifts, so the
  // scan can lock up to a symbol off in either direction. The SFD
  // down-chirps are shift-*sensitive* (their energy concentrates in one
  // dechirped tone only at the true alignment), so refine the anchor by
  // maximizing SFD peak energy over a fine grid around the coarse lock.
  {
    const cvec up = dsp::base_upchirp(n);
    double best_sfd = -1.0;
    std::size_t best_aligned = best_start;
    // Stage 1: whole-symbol shifts; stage 2: a fine pass around the
    // winner. One flat fine scan across +-N is too noisy at the
    // below-noise-floor operating point.
    std::vector<std::int64_t> shifts;
    for (std::int64_t s = -static_cast<std::int64_t>(n);
         s <= static_cast<std::int64_t>(n);
         s += static_cast<std::int64_t>(n)) {
      shifts.push_back(s);
    }
    auto& pool = dsp::DspWorkspace::tls();
    auto win = pool.cbuf(n);
    auto spec = pool.cbuf(n * opt_.oversample);
    for (std::int64_t shift : shifts) {
      const std::int64_t cand64 =
          static_cast<std::int64_t>(best_start) + shift;
      if (cand64 < 0) continue;
      const auto cand = static_cast<std::size_t>(cand64);
      double acc = 0.0;
      for (int k = 0; k < phy_.sfd_len; ++k) {
        dsp::dechirp_window_into(
            rx, cand + static_cast<std::size_t>(phy_.preamble_len + k) * n,
            up, *win);
        dsp::fft_padded_into(*win, n * opt_.oversample, *spec);
        double m = 0.0;
        for (const auto& s : *spec) m = std::max(m, std::norm(s));
        acc += m;
      }
      if (acc > best_sfd) {
        best_sfd = acc;
        best_aligned = cand;
      }
    }
    best_start = best_aligned;
  }
  res.detected = true;

  // Sub-symbol anchor refinement: the preamble/SFD scores are too shallow
  // at below-noise SNR to pin the anchor finely, so try a small grid of
  // anchors and keep the first that decodes CRC-clean (falling back to the
  // best-detected one).
  TeamDecodeResult best_attempt;
  bool have_attempt = false;
  const auto fine_step = static_cast<std::int64_t>(n / 16);
  std::vector<std::int64_t> shifts{0};
  for (int k = 1; k <= 8; ++k) {  // out to half a symbol, nearest first
    shifts.push_back(-k * fine_step);
    shifts.push_back(k * fine_step);
  }
  for (std::int64_t shift : shifts) {
    const std::int64_t cand64 = static_cast<std::int64_t>(best_start) + shift;
    if (cand64 < 0) continue;
    TeamDecodeResult attempt =
        decode_components_at(rx, static_cast<std::size_t>(cand64));
    attempt.detection_score = res.detection_score;
    attempt.detected = true;
    if (attempt.crc_ok) return attempt;
    if (!have_attempt && attempt.frame_ok) {
      best_attempt = attempt;
      have_attempt = true;
    }
  }
  if (have_attempt) return best_attempt;
  res.frame_start = best_start;
  return res;
}

TeamDecodeResult TeamDecoder::decode_components_at(const cvec& rx,
                                                   std::size_t best_start) const {
  const std::size_t n = phy_.chips();
  TeamDecodeResult res;
  res.detected = true;
  res.frame_start = best_start;

  // Component offsets from the accumulated preamble spectrum.
  rvec acc;
  accumulated_spectrum_into(rx, best_start, phy_.preamble_len, acc);
  const std::size_t fftlen = acc.size();
  rvec mag(fftlen);
  for (std::size_t i = 0; i < fftlen; ++i) mag[i] = std::sqrt(acc[i]);
  const double floor = std::sqrt(median_of(acc));
  const double maxmag = *std::max_element(mag.begin(), mag.end());

  struct Cand {
    double bin;
    double mag;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < fftlen; ++i) {
    const std::size_t prev = (i + fftlen - 1) % fftlen;
    const std::size_t next = (i + 1) % fftlen;
    if (mag[i] <= mag[prev] || mag[i] < mag[next]) continue;
    if (mag[i] < opt_.component_rel_floor * maxmag) continue;
    if (mag[i] < std::sqrt(opt_.detect_factor) * floor) continue;
    const dsp::ParabolicFit fit = dsp::parabolic_refine(mag, i, true);
    cands.push_back({static_cast<double>(i) + fit.offset, fit.magnitude});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.mag > b.mag; });
  const double min_sep = 0.7 * static_cast<double>(opt_.oversample);
  for (const Cand& c : cands) {
    bool keep = true;
    for (double o : res.offsets) {
      if (circ_dist(c.bin, o * static_cast<double>(opt_.oversample),
                    static_cast<double>(fftlen)) < min_sep) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    res.offsets.push_back(c.bin / static_cast<double>(opt_.oversample));
    if (res.offsets.size() >= opt_.max_components) break;
  }
  if (res.offsets.empty()) {
    res.detected = false;
    return res;
  }

  // Refine the component offsets jointly on the preamble windows: the
  // accumulated-spectrum peaks are only coarse when many components crowd
  // together, and decoding errors are dominated by +-1 symbol rounding
  // from biased comb positions. Window 0 has the sync gap, so skip it.
  std::vector<cvec> pre;
  for (int k = 1; k < phy_.preamble_len; ++k) {
    cvec w = slice(rx, best_start + static_cast<std::size_t>(k) * n, n);
    dsp::dechirp(w, downchirp_);
    pre.push_back(std::move(w));
  }
  if (!pre.empty()) {
    ToneResidualEvaluator eval(pre, res.offsets);
    descend_offsets(eval, 0.3, 4, 1e-4);
    res.offsets = eval.offsets();
    const double dn_wrap = static_cast<double>(n);
    for (double& o : res.offsets) {
      o = std::fmod(std::fmod(o, dn_wrap) + dn_wrap, dn_wrap);
    }
  }

  // Component weights: average |h| across the same preamble windows by
  // least squares (one shared Gram/Cholesky across windows). Individually
  // sub-noise channels average into usable weights.
  res.weights.assign(res.offsets.size(), 0.0);
  bool fitted = false;
  if (!pre.empty()) {
    try {
      const std::vector<cvec> hs = fit_channels_multi(pre, res.offsets);
      for (const cvec& h : hs) {
        for (std::size_t i = 0; i < h.size(); ++i)
          res.weights[i] += std::abs(h[i]);
      }
      for (double& w : res.weights) w /= static_cast<double>(hs.size());
      fitted = true;
    } catch (const std::runtime_error&) {
      // singular fit: fall through to flat weights
    }
  }
  if (!fitted) std::fill(res.weights.begin(), res.weights.end(), 1.0);

  // Power-spectrum template for the ML search: the accumulated preamble
  // spectrum *is* the team's spectral signature (every member's tone at
  // its own sub-bin position, including members too crowded to resolve as
  // discrete components). A data symbol d shifts the whole signature by d
  // bins, so the ML search correlates each data window's power spectrum
  // against the shifted template — using all of the team's energy instead
  // of a discrete component comb.
  const std::size_t fftlen_t = acc.size();
  rvec tmpl(fftlen_t, 0.0);
  std::vector<std::size_t> support;
  {
    const double floor_med = median_of(acc);
    for (std::size_t b = 0; b < fftlen_t; ++b) {
      const double v = acc[b] - 2.0 * floor_med;
      if (v > 0.0) {
        tmpl[b] = v;
        support.push_back(b);
      }
    }
  }

  // ML data decoding (Eqn 6, matched-filter form): all team members send
  // the same symbol d; score each candidate by the weighted sum of
  // spectrum magnitudes at the components' offset comb.
  const std::size_t data_start =
      best_start +
      static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) * n;
  auto& pool = dsp::DspWorkspace::tls();
  auto spec_lease = pool.cbuf(n * opt_.oversample);
  auto pw_lease = pool.rbuf(n * opt_.oversample);
  cvec& spec = *spec_lease;
  rvec& pw = *pw_lease;
  for (std::size_t j = 0; j < opt_.max_data_symbols; ++j) {
    const std::size_t ws = data_start + j * n;
    if (ws + n > rx.size() + n / 2) break;
    dsp::dechirp_fft_power(rx, ws, downchirp_, n * opt_.oversample, spec, pw);
    double best_val = -1.0;
    std::uint32_t best_d = 0;
    for (std::size_t d = 0; d < n; ++d) {
      const std::size_t shift = d * opt_.oversample;
      double score = 0.0;
      for (std::size_t b : support) {
        score += tmpl[b] * pw[(b + shift) % fftlen_t];
      }
      if (score > best_val) {
        best_val = score;
        best_d = static_cast<std::uint32_t>(d);
      }
    }
    res.symbols.push_back(best_d);
  }

  const auto parsed = lora::parse_frame_symbols(res.symbols, phy_);
  if (parsed) {
    res.frame_ok = true;
    res.payload = parsed->payload;
    res.crc_ok = parsed->crc_ok;
    res.fec = parsed->fec;
  }
  return res;
}

}  // namespace choir::core
