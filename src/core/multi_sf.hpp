// Multi-spreading-factor parallel decoding (paper Sec. 5.2, point 4).
//
// Chirps of different spreading factors are (nearly) orthogonal: a packet
// sent at SF9 dechirps to wideband noise under an SF7 down-chirp and vice
// versa. Production LoRa gateways exploit this to demodulate all SFs of a
// channel in parallel; Choir composes with it directly — the receiver runs
// one CollisionDecoder per spreading factor and each instance disentangles
// the *same-SF* collisions in its own stream.
#pragma once

#include <map>
#include <vector>

#include "core/collision_decoder.hpp"

namespace choir::core {

struct MultiSfResult {
  int sf = 0;
  std::vector<DecodedUser> users;
};

class MultiSfDecoder {
 public:
  /// `base` supplies everything except the spreading factor; one decoder is
  /// instantiated per sf in `sfs` (each must be in [6, 12], all sharing the
  /// base bandwidth).
  MultiSfDecoder(const lora::PhyParams& base, const std::vector<int>& sfs,
                 const CollisionDecoderOptions& opt = {});

  /// Decodes every spreading factor's collisions in the capture. `start`
  /// anchors the shared (beacon-synchronized) window grid; window lengths
  /// differ per SF but all start at the same sample.
  std::vector<MultiSfResult> decode(const cvec& rx, std::size_t start) const;

  /// The per-SF decoders, keyed by spreading factor (for tests/tools).
  const std::map<int, CollisionDecoder>& decoders() const { return decoders_; }

 private:
  std::map<int, CollisionDecoder> decoders_;
};

/// Cross-SF rejection: energy fraction of a unit-power chirp at `sf_tx`
/// that lands in the strongest dechirped bin of an `sf_rx` window —
/// a diagnostic for the orthogonality the scheme relies on.
double cross_sf_leakage(int sf_tx, int sf_rx, double bandwidth_hz);

}  // namespace choir::core
