#include "core/offset_estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/residual.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "dsp/workspace.hpp"
#include "obs/obs.hpp"
#include "util/db.hpp"

namespace choir::core {

namespace {

double circ_dist(double a, double b, double n) {
  double d = std::abs(std::fmod(a - b + n, n));
  return std::min(d, n - d);
}

double wrap_bins(double x, double n) {
  double w = std::fmod(x, n);
  if (w < 0) w += n;
  return w;
}

}  // namespace

OffsetEstimator::OffsetEstimator(const lora::PhyParams& phy,
                                 const EstimatorOptions& opt)
    : phy_(phy), opt_(opt) {
  phy_.validate();
  if (!dsp::is_pow2(opt_.oversample))
    throw std::invalid_argument("OffsetEstimator: oversample not pow2");
}

std::vector<double> OffsetEstimator::coarse_peaks(
    const std::vector<cvec>& windows, double* noise_out, double* max_mag_out,
    std::size_t limit, double cohort_db) const {
  const std::size_t n = phy_.chips();
  const std::size_t fftlen = n * opt_.oversample;
  auto& pool = dsp::DspWorkspace::tls();
  auto spec_lease = pool.cbuf(fftlen);
  auto acc_lease = pool.rbuf(fftlen);
  auto mag_lease = pool.rbuf(fftlen);
  auto scratch_lease = pool.rbuf(fftlen);
  cvec& spec = *spec_lease;
  rvec& acc = *acc_lease;
  rvec& mag = *mag_lease;
  std::fill(acc.begin(), acc.end(), 0.0);
  for (const cvec& w : windows) {
    dsp::fft_padded_into(w, fftlen, spec);
    for (std::size_t i = 0; i < fftlen; ++i) acc[i] += std::norm(spec[i]);
  }
  for (std::size_t i = 0; i < fftlen; ++i) mag[i] = std::sqrt(acc[i]);

  const double floor = dsp::noise_floor_mag(mag, *scratch_lease);
  if (noise_out != nullptr) *noise_out = floor;

  // Local maxima above the detection threshold, circular axis.
  struct Cand {
    double bin;
    double mag;
  };
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < fftlen; ++i) {
    const std::size_t prev = (i + fftlen - 1) % fftlen;
    const std::size_t next = (i + 1) % fftlen;
    if (mag[i] <= mag[prev] || mag[i] < mag[next]) continue;
    if (mag[i] < opt_.detect_factor * floor) continue;
    const dsp::ParabolicFit fit = dsp::parabolic_refine(mag, i, true);
    cands.push_back({wrap_bins(static_cast<double>(i) + fit.offset,
                               static_cast<double>(fftlen)),
                     fit.magnitude});
  }
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.mag > b.mag; });
  if (max_mag_out != nullptr)
    *max_mag_out = cands.empty() ? 0.0 : cands.front().mag;

  // Non-maximum suppression: the sinc main lobe of an N-sample tone spans
  // +-oversample fine bins and its side lobes peak at integer coarse-bin
  // spacings, so suppression must cover slightly more than one coarse bin.
  // Genuinely closer users are recovered in a later SIC phase after the
  // stronger one is subtracted (model subtraction removes side lobes too).
  const double min_sep = 1.12 * static_cast<double>(opt_.oversample);
  std::vector<double> out;
  const double strong_floor =
      cands.empty() ? 0.0 : cands.front().mag * db_to_amplitude(-cohort_db);
  for (const Cand& c : cands) {
    if (c.mag < strong_floor) break;  // only the strong cohort this phase
    bool keep = true;
    for (double b : out) {
      if (circ_dist(c.bin, b, static_cast<double>(fftlen)) < min_sep) {
        keep = false;
        break;
      }
    }
    if (!keep) continue;
    out.push_back(c.bin);
    if (out.size() >= limit) break;
  }
  // Convert fine-grid positions to chirp bins.
  for (double& b : out) b /= static_cast<double>(opt_.oversample);
  return out;
}

std::vector<cvec> OffsetEstimator::window_channels(
    const std::vector<cvec>& windows,
    const std::vector<double>& offsets) const {
  // Shared Gram + Cholesky across windows (offsets are per-user hardware
  // properties; only the per-window rhs changes).
  return fit_channels_multi(windows, offsets);
}

std::vector<UserEstimate> OffsetEstimator::estimate(
    const std::vector<cvec>& raw_preamble) const {
  if (raw_preamble.empty())
    throw std::invalid_argument("OffsetEstimator: no preamble windows");
  CHOIR_OBS_TIMED_SCOPE("core.estimate.us");
  const std::size_t n = phy_.chips();
  for (const cvec& w : raw_preamble) {
    if (w.size() != n)
      throw std::invalid_argument("OffsetEstimator: bad window size");
  }
  // Window 0 mixes pre-transmission silence with the first chirp (timing
  // offsets), so drop it when we can afford to.
  const bool skip = opt_.skip_first_window && raw_preamble.size() > 2;
  const std::vector<cvec> preamble(raw_preamble.begin() + (skip ? 1 : 0),
                                   raw_preamble.end());

  const int refine_count =
      std::min<int>(opt_.refine_windows, static_cast<int>(preamble.size()));
  const std::vector<cvec> refine_set(preamble.begin(),
                                     preamble.begin() + refine_count);

  std::vector<double> offsets;

  auto merge_close = [&]() {
    std::sort(offsets.begin(), offsets.end());
    std::vector<double> merged;
    for (double o : offsets) {
      if (!merged.empty() &&
          circ_dist(o, merged.back(), static_cast<double>(n)) <
              opt_.min_user_separation_bins) {
        continue;
      }
      merged.push_back(o);
    }
    const bool changed = merged.size() != offsets.size();
    offsets = std::move(merged);
    return changed;
  };

  // RELAX-style greedy estimation: repeatedly take the strongest peak of
  // the residual spectrum (all currently-known users subtracted by joint
  // least squares), add it as a new user, and re-refine *all* offsets
  // jointly by coordinate descent on the residual objective (Eqn 4).
  // Adding one tone at a time keeps every refinement warm-started and
  // resolves users much closer than a coarse FFT bin — this subsumes the
  // phased SIC of Sec. 5.2 (strong users are found and modelled first;
  // weak ones emerge once the strong cohort is subtracted).
  while (offsets.size() < opt_.max_users) {
    std::vector<cvec> residual = preamble;
    if (!offsets.empty()) {
      // Singularity depends only on the offsets (the Gram), so the fit
      // fails for all windows or none — one try block covers the batch.
      try {
        const std::vector<cvec> hs = fit_channels_multi(residual, offsets);
        for (std::size_t i = 0; i < residual.size(); ++i)
          subtract_tones(residual[i], offsets, hs[i]);
      } catch (const std::runtime_error&) {
        // singular fit: leave the windows as they are
      }
    }
    // The strongest residual peak may just be our own imperfect
    // subtraction of an existing user; skip such re-detections and take
    // the strongest genuinely new peak.
    const std::vector<double> found = coarse_peaks(
        residual, nullptr, nullptr, offsets.size() + 2, /*cohort_db=*/200.0);
    double fresh = -1.0;
    for (double f : found) {
      bool duplicate = false;
      for (double o : offsets) {
        if (circ_dist(f, o, static_cast<double>(n)) <
            opt_.min_user_separation_bins) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        fresh = f;
        break;
      }
    }
    if (fresh < 0.0) break;
    offsets.push_back(fresh);

    ToneResidualEvaluator eval(refine_set, offsets);
    descend_offsets(eval,
                    offsets.size() == 1 ? opt_.refine_radius_bins : 0.35,
                    /*cycles=*/3, /*tol=*/1e-4);
    offsets = eval.offsets();
    for (double& o : offsets) o = wrap_bins(o, static_cast<double>(n));
    if (merge_close()) break;  // the new tone collapsed onto an old one
  }

  if (offsets.empty()) return {};

  // Final polish: a wider joint pass then a tight one (sub-hundredth-bin
  // accuracy drives both user tracking and SIC subtraction depth).
  {
    ToneResidualEvaluator eval(refine_set, offsets);
    descend_offsets(eval, 0.35, opt_.descent_cycles, 1e-4);
    descend_offsets(eval, 0.1, 4, 1e-5);
    offsets = eval.offsets();
    for (double& o : offsets) o = wrap_bins(o, static_cast<double>(n));
    merge_close();
  }

  // Final channel fit across all preamble windows.
  const std::vector<cvec> chans = window_channels(preamble, offsets);

  // Robust per-sample noise estimate from the *residual spectrum floor*
  // after all users are removed. (The raw least-squares residual also
  // carries strong users' modelling error — ridge shrinkage, sub-0.01-bin
  // frequency mismatch — which can overstate the noise by ~10 dB and
  // wrongly gate out genuine weak users.) The accumulated residual power
  // per bin is Gamma(W)-distributed with mean W*N*sigma^2, whose median is
  // about (W - 1/3)*N*sigma^2.
  double noise_var = 0.0;
  {
    std::vector<cvec> residual = preamble;
    try {
      const std::vector<cvec> hs = fit_channels_multi(residual, offsets);
      for (std::size_t i = 0; i < residual.size(); ++i)
        subtract_tones(residual[i], offsets, hs[i]);
    } catch (const std::runtime_error&) {
    }
    double floor_amp = 0.0;
    (void)coarse_peaks(residual, &floor_amp, nullptr, 1, 200.0);
    const double w_count = static_cast<double>(preamble.size());
    noise_var = floor_amp * floor_amp /
                ((w_count - 1.0 / 3.0) * static_cast<double>(n));
  }

  std::vector<UserEstimate> users;
  users.reserve(offsets.size());
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    UserEstimate u;
    u.offset_bins = offsets[i];
    // De-rotate the deterministic window-to-window phase advance, then
    // average the channel coherently.
    cplx rot_acc{0.0, 0.0};
    for (std::size_t k = 0; k + 1 < chans.size(); ++k) {
      rot_acc += chans[k + 1][i] * std::conj(chans[k][i]);
    }
    const double step = std::arg(rot_acc);
    u.window_phase_step = step;
    cplx avg{0.0, 0.0};
    double mag = 0.0;
    for (std::size_t k = 0; k < chans.size(); ++k) {
      avg += chans[k][i] * cis(-step * static_cast<double>(k));
      mag += std::abs(chans[k][i]);
    }
    avg /= static_cast<double>(chans.size());
    mag /= static_cast<double>(chans.size());
    u.channel = avg;
    u.magnitude = mag;
    u.snr_db = noise_var > 0.0 ? linear_to_db(mag * mag / noise_var) : 60.0;
    if (u.snr_db < opt_.min_user_snr_db) continue;  // refinement ghost
    users.push_back(u);
  }
  std::sort(users.begin(), users.end(),
            [](const UserEstimate& a, const UserEstimate& b) {
              return a.magnitude > b.magnitude;
            });
  CHOIR_OBS_HIST_COUNTS("core.estimate.users", static_cast<double>(users.size()));
  return users;
}

}  // namespace choir::core
