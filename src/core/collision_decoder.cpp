#include "core/collision_decoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/residual.hpp"
#include "dsp/chirp.hpp"
#include "obs/obs.hpp"
#include "dsp/fft.hpp"
#include "dsp/fold_tone.hpp"
#include "dsp/peaks.hpp"
#include "dsp/workspace.hpp"
#include "opt/coordinate_descent.hpp"
#include "opt/golden.hpp"

namespace choir::core {

namespace {

double wrap(double x, double n) {
  double w = std::fmod(x, n);
  if (w < 0) w += n;
  return w;
}

double circ_dist(double a, double b, double n) {
  const double d = std::abs(wrap(a - b, n));
  return std::min(d, n - d);
}

cvec slice(const cvec& rx, std::size_t start, std::size_t n) {
  cvec out(n, cplx{0.0, 0.0});
  if (start >= rx.size()) return out;
  const std::size_t avail = std::min(n, rx.size() - start);
  std::copy(rx.begin() + static_cast<std::ptrdiff_t>(start),
            rx.begin() + static_cast<std::ptrdiff_t>(start + avail),
            out.begin());
  return out;
}

}  // namespace

CollisionDecoder::CollisionDecoder(const lora::PhyParams& phy,
                                   const CollisionDecoderOptions& opt)
    : phy_(phy),
      opt_(opt),
      estimator_(phy, opt.est),
      downchirp_(dsp::base_downchirp(phy.chips())),
      upchirp_(dsp::base_upchirp(phy.chips())) {
  phy_.validate();
}

std::vector<cvec> CollisionDecoder::dechirped_windows(const cvec& rx,
                                                      std::size_t start,
                                                      std::size_t count,
                                                      bool up) const {
  const std::size_t n = phy_.chips();
  std::vector<cvec> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    cvec w = slice(rx, start + k * n, n);
    dsp::dechirp(w, up ? downchirp_ : upchirp_);
    out.push_back(std::move(w));
  }
  return out;
}

void CollisionDecoder::estimate_timing(const cvec& rx, std::size_t start,
                                       std::vector<UserEstimate>& users) const {
  const std::size_t n = phy_.chips();
  const double dn = static_cast<double>(n);
  if (phy_.sfd_len <= 0) {
    for (auto& u : users) {
      u.timing_samples = 0.0;
      u.cfo_bins = u.offset_bins;
    }
    return;
  }
  // SFD down-chirps dechirped with the *up*-chirp put each user's tone at
  // mu = cfo + tau = lambda + 2*tau. Estimate the mu set with the same
  // joint residual refinement used on the preamble (sub-hundredth-bin
  // accuracy matters: the fold template's phase is 2*pi*tau), then match
  // mus to users globally — each user needs a feasible tau and a channel
  // magnitude consistent with its preamble estimate.
  const std::vector<cvec> sfd = dechirped_windows(
      rx, start + static_cast<std::size_t>(phy_.preamble_len) * n,
      static_cast<std::size_t>(phy_.sfd_len), /*up=*/false);

  // Probe windows (first data symbols) used to validate tau candidates:
  // the fold-aware template only matches at the user's true timing.
  const std::size_t probe_start =
      start + static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) * n;
  std::vector<cvec> probe;
  for (std::size_t j = 0; j < 4; ++j) {
    const std::size_t ws = probe_start + j * n;
    if (ws + n > rx.size()) break;
    cvec w = slice(rx, ws, n);
    dsp::dechirp(w, downchirp_);
    probe.push_back(std::move(w));
  }

  // Estimate the unordered set of SFD tone positions with the same
  // greedy-joint (RELAX) machinery used for the preamble — with many users
  // the mus crowd into a few bins and per-user comb scans cross-lock.
  EstimatorOptions sopt = estimator_.options();
  sopt.skip_first_window = false;
  sopt.refine_windows = phy_.sfd_len;
  sopt.max_users = users.size() + 3;
  sopt.min_user_snr_db = -8.0;
  std::vector<UserEstimate> mu_set;
  try {
    mu_set = OffsetEstimator(phy_, sopt).estimate(sfd);
  } catch (const std::exception&) {
    mu_set.clear();
  }

  // Candidate symbol values for validation come from each probe window's
  // FFT peaks (peak position ~ d + lambda), keeping validation O(peaks)
  // instead of O(N^2).
  std::vector<std::vector<double>> probe_peaks;
  {
    auto& pool = dsp::DspWorkspace::tls();
    const std::size_t fft_len = n * opt_.est.oversample;
    auto spec = pool.cbuf(fft_len);
    auto mag = pool.rbuf(fft_len);
    auto scratch = pool.rbuf(fft_len);
    auto pk = pool.peaks();
    for (const cvec& w : probe) {
      dsp::fft_padded_into(w, fft_len, *spec);
      dsp::magnitude_into(*spec, *mag);
      dsp::PeakFindOptions popt;
      popt.threshold = 2.5 * dsp::noise_floor_mag(*mag, *scratch);
      popt.min_separation = 0.5 * static_cast<double>(opt_.est.oversample);
      popt.max_peaks = 2 * users.size() + 6;
      dsp::find_peaks_mag(*spec, *mag, popt, *pk);
      std::vector<double> pos;
      pos.reserve(pk->size());
      for (const dsp::Peak& p : *pk) {
        pos.push_back(p.bin / static_cast<double>(opt_.est.oversample));
      }
      probe_peaks.push_back(std::move(pos));
    }
  }
  auto validation_score = [&](const UserEstimate& u, double tau) {
    double acc = 0.0;
    for (std::size_t pi = 0; pi < probe.size(); ++pi) {
      std::vector<std::uint32_t> ds;
      for (double p : probe_peaks[pi]) {
        const double sym = std::round(wrap(p - u.offset_bins, dn));
        ds.push_back(static_cast<std::uint32_t>(wrap(sym, dn)));
      }
      acc += dsp::fold_argmax_candidates(probe[pi], u.offset_bins, tau, ds)
                 .score;
    }
    return acc;
  };

  // For each user: candidates are every feasible mu from the jointly
  // estimated SFD tone set, plus the local maxima of the user's own comb
  // scan (insurance against tones the joint estimate missed). The probe
  // data windows arbitrate — the fold-aware template only matches at the
  // true timing.
  for (std::size_t ui = 0; ui < users.size(); ++ui) {
    std::vector<double> cands;
    for (const UserEstimate& m : mu_set) {
      double delta = wrap(m.offset_bins - users[ui].offset_bins, dn);
      if (delta > dn / 2.0) delta -= dn;
      const double tau = delta / 2.0;
      // Symmetric feasibility: the window anchor itself can be late by a
      // fraction of a symbol (streaming detection grids), which shows up
      // as a negative effective timing offset.
      if (tau >= -opt_.max_timing_samples && tau <= opt_.max_timing_samples)
        cands.push_back(tau);
    }
    {
      constexpr double kStep = 0.25;
      std::vector<double> taus, mags;
      for (double tau = -opt_.max_timing_samples;
           tau <= opt_.max_timing_samples; tau += kStep) {
        const double mu = wrap(users[ui].offset_bins + 2.0 * tau, dn);
        double acc = 0.0;
        for (const cvec& w : sfd) acc += std::abs(dsp::tone_dft(w, mu));
        taus.push_back(tau);
        mags.push_back(acc);
      }
      const double top = *std::max_element(mags.begin(), mags.end());
      for (std::size_t i = 0; i < taus.size(); ++i) {
        const bool local_max = (i == 0 || mags[i] >= mags[i - 1]) &&
                               (i + 1 == taus.size() || mags[i] > mags[i + 1]);
        if (!local_max || mags[i] < 0.4 * top) continue;
        bool dup = false;
        for (double c : cands) {
          if (std::abs(c - taus[i]) < 0.3) {
            dup = true;
            break;
          }
        }
        if (!dup) cands.push_back(taus[i]);
      }
    }
    double best_tau = cands.front();
    if (cands.size() > 1 && !probe.empty()) {
      double best_score = -1.0;
      for (double tau : cands) {
        const double score = validation_score(users[ui], tau);
        if (score > best_score) {
          best_score = score;
          best_tau = tau;
        }
      }
    }
    users[ui].timing_samples = best_tau;
    users[ui].cfo_bins = users[ui].offset_bins + best_tau;
  }

  // Swap disambiguation: when user a's comb could also have produced user
  // b's SFD tone and vice versa, the candidate pick can still cross-lock
  // pairwise (same tones, swapped labels). Validate both labelings against
  // the probe windows and keep the better one.
  if (probe.empty()) return;
  const auto& fold_score = validation_score;
  for (std::size_t a = 0; a < users.size(); ++a) {
    for (std::size_t b = a + 1; b < users.size(); ++b) {
      const double mu_a = users[a].offset_bins + 2.0 * users[a].timing_samples;
      const double mu_b = users[b].offset_bins + 2.0 * users[b].timing_samples;
      auto tau_from = [&](double mu, const UserEstimate& u) {
        double delta = wrap(mu - u.offset_bins, dn);
        if (delta > dn / 2.0) delta -= dn;
        return delta / 2.0;
      };
      const double tau_ab = tau_from(mu_b, users[a]);
      const double tau_ba = tau_from(mu_a, users[b]);
      const bool swap_feasible = tau_ab >= -opt_.max_timing_samples &&
                                 tau_ab <= opt_.max_timing_samples &&
                                 tau_ba >= -opt_.max_timing_samples &&
                                 tau_ba <= opt_.max_timing_samples;
      if (!swap_feasible) continue;
      if (std::abs(tau_ab - users[a].timing_samples) < 0.05) continue;
      const double keep = fold_score(users[a], users[a].timing_samples) +
                          fold_score(users[b], users[b].timing_samples);
      const double swapped = fold_score(users[a], tau_ab) +
                             fold_score(users[b], tau_ba);
      if (swapped > keep) {
        users[a].timing_samples = tau_ab;
        users[a].cfo_bins = users[a].offset_bins + tau_ab;
        users[b].timing_samples = tau_ba;
        users[b].cfo_bins = users[b].offset_bins + tau_ba;
      }
    }
  }
}

std::vector<double> CollisionDecoder::window_peak_positions(
    const cvec& dechirped, std::size_t max_peaks) const {
  const std::size_t n = phy_.chips();
  const std::size_t fft_len = n * opt_.est.oversample;
  auto& pool = dsp::DspWorkspace::tls();
  auto spec = pool.cbuf(fft_len);
  auto mag = pool.rbuf(fft_len);
  auto scratch = pool.rbuf(fft_len);
  auto pk = pool.peaks();
  dsp::fft_padded_into(dechirped, fft_len, *spec);
  dsp::magnitude_into(*spec, *mag);
  dsp::PeakFindOptions popt;
  popt.threshold = 2.2 * dsp::noise_floor_mag(*mag, *scratch);
  popt.min_separation = 0.5 * static_cast<double>(opt_.est.oversample);
  popt.max_peaks = max_peaks;
  dsp::find_peaks_mag(*spec, *mag, popt, *pk);
  std::vector<double> pos;
  pos.reserve(pk->size());
  for (const dsp::Peak& p : *pk) {
    pos.push_back(p.bin / static_cast<double>(opt_.est.oversample));
  }
  return pos;
}

std::vector<std::uint32_t> CollisionDecoder::extract_window_symbols(
    const cvec& dechirped_in, const std::vector<UserEstimate>& users,
    const std::vector<double>& peak_positions,
    std::vector<std::uint32_t>& prev_symbols) const {
  auto& pool = dsp::DspWorkspace::tls();
  auto dechirped_lease = pool.cbuf(dechirped_in.size());
  cvec& dechirped = *dechirped_lease;
  std::copy(dechirped_in.begin(), dechirped_in.end(), dechirped.begin());
  const double dn = static_cast<double>(phy_.chips());
  // Candidate symbols per user: values implied by the window's FFT peaks
  // (plus neighbors — the fold can bias an apparent peak by a fraction of
  // a bin). An empty list makes fold_argmax_candidates scan exhaustively.
  auto cand_lease = pool.ubuf(0);
  std::vector<std::uint32_t>& cand = *cand_lease;
  auto candidates_for =
      [&](const UserEstimate& est) -> const std::vector<std::uint32_t>& {
    cand.clear();
    for (double p : peak_positions) {
      const auto base = static_cast<std::int64_t>(
          std::llround(wrap(p - est.offset_bins, dn)));
      for (std::int64_t nb = base - 1; nb <= base + 1; ++nb) {
        cand.push_back(static_cast<std::uint32_t>(
            wrap(static_cast<double>(nb), dn)));
      }
    }
    return cand;
  };
  // Strongest user first: decode, subtract its fold-aware template, move
  // on — in-window successive cancellation keeps weak users decodable next
  // to strong ones (the estimator already sorted users by magnitude).
  std::vector<std::uint32_t> symbols(users.size(), 0);
  std::vector<cplx> amps(users.size());
  auto pick = [&](std::size_t u, const cvec& w) {
    const UserEstimate& est = users[u];
    const dsp::FoldArgmax r = dsp::fold_argmax_candidates(
        w, est.offset_bins, est.timing_samples, candidates_for(est));
    std::uint32_t value = r.symbol;
    cplx amp = r.amplitude;
    if (opt_.isi_dedup && est.timing_samples > opt_.isi_dedup_min_tau &&
        !prev_symbols.empty() && value == prev_symbols[u] &&
        r.second_score > opt_.isi_second_ratio * r.score) {
      // Fig 5 rule: with a large timing offset this window's strongest
      // component can be the tail of the previous (already reported)
      // symbol; the runner-up then carries the new value.
      value = r.second;
      amp = dsp::fold_fit(w, est.offset_bins, est.timing_samples, value);
    }
    symbols[u] = value;
    amps[u] = amp;
  };

  for (std::size_t u = 0; u < users.size(); ++u) {
    pick(u, dechirped);
    dsp::fold_subtract(dechirped, users[u].offset_bins,
                       users[u].timing_samples, symbols[u], amps[u]);
  }
  // Refinement pass: re-decode each user against the residual with only
  // the *other* users subtracted. This untangles users whose fractional
  // offsets nearly coincide (first-pass biases from mutual sinc leakage).
  if (opt_.refine_pass && users.size() > 1) {
    // Only users whose fractional offsets nearly coincide with another's
    // benefit; skipping the rest saves a full matched pass.
    std::vector<bool> ambiguous(users.size(), false);
    for (std::size_t a = 0; a < users.size(); ++a) {
      for (std::size_t b = a + 1; b < users.size(); ++b) {
        double fd = std::abs((users[a].offset_bins - std::floor(users[a].offset_bins)) -
                             (users[b].offset_bins - std::floor(users[b].offset_bins)));
        fd = std::min(fd, 1.0 - fd);
        if (fd < 0.25) ambiguous[a] = ambiguous[b] = true;
      }
    }
    for (std::size_t u = 0; u < users.size(); ++u) {
      if (!ambiguous[u]) continue;
      // Add this user's pass-1 template back in place, re-decode against
      // the residual with only the others subtracted, then subtract the
      // (possibly revised) template again. No window copy needed.
      dsp::fold_subtract(dechirped, users[u].offset_bins,
                         users[u].timing_samples, symbols[u], -amps[u]);
      pick(u, dechirped);
      dsp::fold_subtract(dechirped, users[u].offset_bins,
                         users[u].timing_samples, symbols[u], amps[u]);
    }
  }
  prev_symbols = symbols;
  return symbols;
}

std::vector<DecodedUser> CollisionDecoder::decode_once(
    const cvec& rx, std::size_t start, obs::TraceCollector* trace) const {
  const std::size_t n = phy_.chips();
  std::vector<UserEstimate> users;
  {
    CHOIR_OBS_TRACE_SPAN(trace, "core.estimate");
    const std::vector<cvec> preamble = dechirped_windows(
        rx, start, static_cast<std::size_t>(phy_.preamble_len), true);
    users = estimator_.estimate(preamble);
    if (users.empty()) return {};
    estimate_timing(rx, start, users);
  }

  std::vector<DecodedUser> out(users.size());

  // Dechirp all data windows once.
  const std::size_t data_start =
      start + static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) * n;
  std::vector<cvec> data_windows;
  for (std::size_t j = 0; j < opt_.max_data_symbols; ++j) {
    const std::size_t ws = data_start + j * n;
    if (ws + n > rx.size() + n / 2) break;
    cvec w = slice(rx, ws, n);
    dsp::dechirp(w, downchirp_);
    data_windows.push_back(std::move(w));
  }

  std::vector<std::vector<double>> window_peaks;
  window_peaks.reserve(data_windows.size());
  for (const cvec& w : data_windows) {
    window_peaks.push_back(window_peak_positions(w, 3 * users.size() + 8));
  }
  auto extract_all = [&](std::vector<DecodedUser>& dst) {
    for (DecodedUser& du : dst) du.symbols.clear();
    std::vector<std::uint32_t> prev;
    for (std::size_t j = 0; j < data_windows.size(); ++j) {
      const std::vector<std::uint32_t> syms =
          extract_window_symbols(data_windows[j], users, window_peaks[j], prev);
      for (std::size_t u = 0; u < users.size(); ++u)
        dst[u].symbols.push_back(syms[u]);
    }
  };
  extract_all(out);

  // Packet-level timing polish: with the pass-1 symbols fixed, each user's
  // tau is refined on the whole packet (the SFD gave only two windows of
  // evidence), then everything is re-demodulated once.
  if (opt_.tau_polish && !data_windows.empty()) {
    for (std::size_t u = 0; u < users.size(); ++u) {
      const std::size_t stride =
          std::max<std::size_t>(1, data_windows.size() / 8);
      auto objective = [&](double tau) {
        double acc = 0.0;
        for (std::size_t j = 0; j < data_windows.size(); j += stride) {
          acc += std::abs(dsp::fold_corr(data_windows[j],
                                         users[u].offset_bins, tau,
                                         out[u].symbols[j]));
        }
        return -acc;
      };
      const opt::GoldenResult g = opt::golden_section_minimize(
          objective, users[u].timing_samples - 0.6,
          users[u].timing_samples + 0.6, 5e-3);
      users[u].timing_samples = g.x;
      users[u].cfo_bins = users[u].offset_bins + g.x;
    }
    extract_all(out);
  }
  for (std::size_t u = 0; u < users.size(); ++u) out[u].est = users[u];

  for (DecodedUser& du : out) {
    const auto parsed = lora::parse_frame_symbols(du.symbols, phy_);
    if (parsed) {
      du.frame_ok = true;
      du.payload = parsed->payload;
      du.crc_ok = parsed->crc_ok;
      du.fec = parsed->fec;
    }
  }
  return out;
}

void CollisionDecoder::subtract_window(cvec& rx, std::size_t wstart,
                                       const std::vector<double>& positions,
                                       bool up) const {
  const std::size_t n = phy_.chips();
  if (wstart >= rx.size()) return;
  // De-duplicate positions that coincide (tone_matrix would be singular).
  std::vector<double> pos = positions;
  std::sort(pos.begin(), pos.end());
  pos.erase(std::unique(pos.begin(), pos.end(),
                        [n](double a, double b) {
                          return circ_dist(a, b, static_cast<double>(n)) <
                                 0.05;
                        }),
            pos.end());
  if (pos.empty()) return;

  cvec w = slice(rx, wstart, n);
  dsp::dechirp(w, up ? downchirp_ : upchirp_);
  cvec h;
  try {
    h = fit_channels(w, pos);
  } catch (const std::runtime_error&) {
    return;  // singular fit: skip this window
  }
  const cvec model = reconstruct_tones(pos, h, n);
  const cvec& carrier = up ? upchirp_ : downchirp_;
  const std::size_t avail = std::min(n, rx.size() - wstart);
  for (std::size_t i = 0; i < avail; ++i) {
    rx[wstart + i] -= model[i] * carrier[i];
  }
}

std::vector<DecodedUser> CollisionDecoder::decode(
    const cvec& rx, std::size_t start, DecodeDiag* diag,
    obs::TraceCollector* trace) const {
  CHOIR_OBS_TIMED_SCOPE_T("core.decode.us", trace);
  // Packet-level SIC: strip CRC-clean users from the capture and give the
  // rest another chance with the interference gone.
  cvec work = rx;
  std::vector<DecodedUser> finished;
  std::vector<DecodedUser> losers;
  const int rounds = std::max(1, opt_.packet_sic_rounds);
  int rounds_run = 0;
  std::size_t first_pass_users = 0;
  for (int round = 0; round < rounds; ++round) {
    ++rounds_run;
    CHOIR_OBS_TRACE_SPAN(trace, "core.sic.round");
    std::vector<DecodedUser> decoded = decode_once(work, start, trace);
    if (round == 0) first_pass_users = decoded.size();
    std::vector<DecodedUser> winners;
    losers.clear();
    for (DecodedUser& du : decoded) {
      if (du.crc_ok) {
        winners.push_back(std::move(du));
      } else {
        losers.push_back(std::move(du));
      }
    }
    if (!winners.empty()) subtract_users(work, start, winners);
    for (DecodedUser& w : winners) finished.push_back(std::move(w));
    if (winners.empty() || losers.empty()) break;
  }
  for (DecodedUser& l : losers) finished.push_back(std::move(l));

  CHOIR_OBS_COUNT("core.decode.sic_rounds", static_cast<std::uint64_t>(rounds_run));
  CHOIR_OBS_HIST_COUNTS("core.decode.users", static_cast<double>(finished.size()));
  for (const DecodedUser& du : finished) {
    if (du.crc_ok) {
      CHOIR_OBS_COUNT("core.decode.crc_ok", 1);
    } else if (du.frame_ok) {
      CHOIR_OBS_COUNT("core.decode.crc_fail", 1);
    } else {
      CHOIR_OBS_COUNT("core.decode.frame_fail", 1);
    }
  }
  if (diag != nullptr) {
    diag->peak_count = first_pass_users;
    diag->sic_rounds = rounds_run;
  }
  return finished;
}

void CollisionDecoder::subtract_users(
    cvec& rx, std::size_t start, const std::vector<DecodedUser>& users) const {
  if (users.empty()) return;
  const std::size_t n = phy_.chips();
  const double dn = static_cast<double>(n);

  std::vector<double> offsets;
  offsets.reserve(users.size());
  for (const DecodedUser& du : users) offsets.push_back(du.est.offset_bins);

  // Preamble windows: every user sits at its aggregate offset (the fold is
  // at the window boundary there, so the pure-tone model is accurate).
  for (int k = 0; k < phy_.preamble_len; ++k) {
    subtract_window(rx, start + static_cast<std::size_t>(k) * n, offsets,
                    true);
  }
  // SFD down-chirps: dechirping with the up-chirp puts tones at cfo + tau.
  std::vector<double> mirrored;
  mirrored.reserve(users.size());
  for (const DecodedUser& du : users) {
    mirrored.push_back(
        wrap(du.est.offset_bins + 2.0 * du.est.timing_samples, dn));
  }
  for (int k = 0; k < phy_.sfd_len; ++k) {
    subtract_window(
        rx, start + static_cast<std::size_t>(phy_.preamble_len + k) * n,
        mirrored, false);
  }
  // Data windows: fold-aware template subtraction per user.
  const std::size_t data_start =
      start + static_cast<std::size_t>(phy_.preamble_len + phy_.sfd_len) * n;
  std::size_t n_syms = 0;
  for (const DecodedUser& du : users)
    n_syms = std::max(n_syms, du.symbols.size());
  for (std::size_t j = 0; j < n_syms; ++j) {
    const std::size_t ws = data_start + j * n;
    if (ws + n > rx.size()) break;
    cvec w = slice(rx, ws, n);
    dsp::dechirp(w, downchirp_);
    cvec cleaned = w;
    for (const DecodedUser& du : users) {
      if (j >= du.symbols.size()) continue;
      const cplx amp = dsp::fold_fit(cleaned, du.est.offset_bins,
                                     du.est.timing_samples, du.symbols[j]);
      dsp::fold_subtract(cleaned, du.est.offset_bins, du.est.timing_samples,
                         du.symbols[j], amp);
    }
    // Remove (original - cleaned), re-chirped, from the capture.
    for (std::size_t i = 0; i < n; ++i) {
      rx[ws + i] -= (w[i] - cleaned[i]) * upchirp_[i];
    }
  }
}

std::vector<DecodedUser> CollisionDecoder::decode_and_subtract(
    cvec& rx, std::size_t start) const {
  const std::vector<DecodedUser> decoded = decode(rx, start);
  subtract_users(rx, start, decoded);
  return decoded;
}

}  // namespace choir::core
