// Beyond-range decoding of coordinated sensor teams (paper Sec. 7).
//
// A team of co-located sensors — each individually below the base station's
// detection floor — responds to a beacon with *identical* packets in the
// same slot. Their signals do not combine coherently (each has its own CFO
// and sub-symbol timing offset), but each contributes its own sinc peak at
// its own aggregate offset. The decoder:
//   1. detects the collision by non-coherently accumulating dechirped FFT
//      power across the preamble windows (peaks too weak in any one symbol
//      emerge from the noise after averaging n_preamble spectra),
//   2. reads the component offsets from the accumulated spectrum and fits
//      per-component channels by least squares on the preamble,
//   3. decodes each data symbol with a maximum-likelihood search over the
//      single shared value d (Eqn 6): the matched-filter score
//      sum_i w_i * |F[d + offset_i]| is maximized over d in [0, 2^SF).
//      (Per-symbol channel phases are not predictable across a
//      phase-continuous transmitter's data-dependent symbol boundaries, so
//      the combining is non-coherent across components — see DESIGN.md.)
#pragma once

#include <cstdint>
#include <vector>

#include "coding/codec.hpp"
#include "lora/frame.hpp"
#include "lora/params.hpp"
#include "util/types.hpp"

namespace choir::core {

struct TeamDecoderOptions {
  std::size_t oversample = 16;
  /// Accumulated peak must exceed this multiple of the accumulated noise
  /// floor for a detection.
  double detect_factor = 3.8;
  /// Components at least this fraction of the strongest accumulated peak
  /// are kept.
  double component_rel_floor = 0.4;
  std::size_t max_components = 10;
  /// Start-search granularity: step = chips / this.
  std::size_t search_step_divisor = 4;
  std::size_t max_data_symbols = 600;
};

struct TeamDecodeResult {
  bool detected = false;
  std::size_t frame_start = 0;       ///< best-scoring window anchor
  double detection_score = 0.0;      ///< accumulated peak / noise floor
  std::vector<double> offsets;       ///< component aggregate offsets (bins)
  std::vector<double> weights;       ///< per-component |h| estimates
  std::vector<std::uint32_t> symbols;
  std::vector<std::uint8_t> payload;
  bool frame_ok = false;
  bool crc_ok = false;
  coding::DecodeStats fec;
};

class TeamDecoder {
 public:
  explicit TeamDecoder(const lora::PhyParams& phy,
                       const TeamDecoderOptions& opt = {});

  /// Detects and decodes a team response expected to start near
  /// `start_hint` (the beacon slot time), searching +-search_radius
  /// samples around it.
  TeamDecodeResult decode(const cvec& rx, std::size_t start_hint,
                          std::size_t search_radius) const;

  /// Detection score (accumulated preamble peak / noise floor) at an exact
  /// anchor — exposed for calibration benches.
  double detection_score_at(const cvec& rx, std::size_t start) const;

 private:
  /// Accumulated dechirped power spectrum over `windows` symbol windows,
  /// written into `acc` (resized; zero heap allocations at steady state).
  void accumulated_spectrum_into(const cvec& rx, std::size_t start,
                                 int windows, rvec& acc) const;

  /// Component estimation + ML decoding at an exact anchor.
  TeamDecodeResult decode_components_at(const cvec& rx,
                                        std::size_t best_start) const;

  lora::PhyParams phy_;
  TeamDecoderOptions opt_;
  cvec downchirp_;
};

}  // namespace choir::core
