#include "core/multi_sf.hpp"

#include <cmath>
#include <stdexcept>

#include "dsp/chirp.hpp"
#include "dsp/fft.hpp"
#include "lora/modulator.hpp"

namespace choir::core {

MultiSfDecoder::MultiSfDecoder(const lora::PhyParams& base,
                               const std::vector<int>& sfs,
                               const CollisionDecoderOptions& opt) {
  if (sfs.empty()) throw std::invalid_argument("MultiSfDecoder: no sfs");
  for (int sf : sfs) {
    lora::PhyParams phy = base;
    phy.sf = sf;
    phy.validate();
    decoders_.emplace(sf, CollisionDecoder(phy, opt));
  }
}

std::vector<MultiSfResult> MultiSfDecoder::decode(const cvec& rx,
                                                  std::size_t start) const {
  std::vector<MultiSfResult> out;
  for (const auto& [sf, dec] : decoders_) {
    MultiSfResult r;
    r.sf = sf;
    r.users = dec.decode(rx, start);
    // Cross-SF energy occasionally produces a spurious low-quality user;
    // only keep users whose frames parsed (real same-SF signals).
    std::erase_if(r.users,
                  [](const DecodedUser& du) { return !du.frame_ok; });
    out.push_back(std::move(r));
  }
  return out;
}

double cross_sf_leakage(int sf_tx, int sf_rx, double bandwidth_hz) {
  lora::PhyParams tx_phy;
  tx_phy.sf = sf_tx;
  tx_phy.bandwidth_hz = bandwidth_hz;
  lora::PhyParams rx_phy;
  rx_phy.sf = sf_rx;
  rx_phy.bandwidth_hz = bandwidth_hz;

  // One full tx chirp observed through one rx window.
  const std::size_t n_rx = rx_phy.chips();
  lora::Modulator mod(tx_phy);
  const cvec wave = mod.synthesize_segments(
      {{lora::SegmentKind::kUpchirp, 0}, {lora::SegmentKind::kUpchirp, 0},
       {lora::SegmentKind::kUpchirp, 0}, {lora::SegmentKind::kUpchirp, 0}},
      0.0);
  cvec win(wave.begin(), wave.begin() + static_cast<std::ptrdiff_t>(
                                            std::min(n_rx, wave.size())));
  win.resize(n_rx, cplx{0.0, 0.0});
  dsp::dechirp(win, dsp::base_downchirp(n_rx));
  dsp::plan_for(n_rx).forward(win);  // in place: win IS the spectrum now
  const cvec& spec = win;
  double peak = 0.0, total = 0.0;
  for (const auto& s : spec) {
    peak = std::max(peak, std::norm(s));
    total += std::norm(s);
  }
  return total > 0.0 ? peak / total : 0.0;
}

}  // namespace choir::core
