// Beacon-driven team scheduling (paper Sec. 7.1).
//
// The base station knows each sensor's long-run SNR (from past receptions
// or deployment surveys). Sensors above the demodulation floor transmit
// individually; sensors below it are grouped into geographically-compact
// teams sized so the team's aggregate received power clears the decoding
// threshold. Farther sensors therefore get larger teams — coarser data,
// but reachable (the resolution/distance trade-off of Fig 10).
#pragma once

#include <cstddef>
#include <vector>

namespace choir::core {

struct SensorInfo {
  std::size_t id = 0;
  double snr_db = 0.0;  ///< long-run per-sample SNR at the base station
  double x_m = 0.0;     ///< position (for proximity grouping)
  double y_m = 0.0;
};

struct TeamPlan {
  /// Sensors that can transmit individually.
  std::vector<std::size_t> individual;
  /// Teams of below-floor sensors scheduled to transmit together.
  std::vector<std::vector<std::size_t>> teams;
  /// Sensors that cannot be combined into any viable team.
  std::vector<std::size_t> unreachable;
};

struct TeamPlanOptions {
  /// SNR above which a sensor is decodable on its own.
  double individual_floor_db = -7.5;
  /// Effective aggregate SNR a team must reach (the team decoder's
  /// accumulated-preamble detection threshold, with margin).
  double team_target_db = -4.0;
  /// Maximum distance between team members (correlated-data radius).
  double proximity_m = 150.0;
  std::size_t max_team_size = 30;
};

/// Greedy planner: clusters below-floor sensors by proximity (strongest
/// first as seeds) and grows each team until its power sum clears the
/// target.
TeamPlan plan_teams(const std::vector<SensorInfo>& sensors,
                    const TeamPlanOptions& opt);

/// Aggregate SNR (dB) of a set of incoherently-added equal-data
/// transmitters with the given per-sensor SNRs (power sum).
double aggregate_snr_db(const std::vector<double>& member_snrs_db);

}  // namespace choir::core
