#include "core/tracker.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "cluster/constrained_kmeans.hpp"
#include "dsp/chirp.hpp"
#include "dsp/fft.hpp"
#include "dsp/peaks.hpp"
#include "dsp/workspace.hpp"
#include "obs/obs.hpp"

namespace choir::core {

namespace {

double frac_part(double x) { return x - std::floor(x); }

}  // namespace

UserTracker::UserTracker(const lora::PhyParams& phy, const TrackerOptions& opt)
    : phy_(phy), opt_(opt), downchirp_(dsp::base_downchirp(phy.chips())) {
  phy_.validate();
}

std::vector<PeakObservation> UserTracker::collect(const cvec& rx,
                                                  std::size_t data_start,
                                                  std::size_t n_windows,
                                                  std::size_t max_peaks) const {
  const std::size_t n = phy_.chips();
  const std::size_t fft_len = n * opt_.oversample;
  std::vector<PeakObservation> out;
  auto& pool = dsp::DspWorkspace::tls();
  auto spec = pool.cbuf(fft_len);
  auto mag = pool.rbuf(fft_len);
  auto scratch = pool.rbuf(fft_len);
  auto pk = pool.peaks();
  for (std::size_t j = 0; j < n_windows; ++j) {
    dsp::dechirp_fft_mag(rx, data_start + j * n, downchirp_, fft_len, *spec,
                         *mag);
    dsp::PeakFindOptions popt;
    popt.threshold =
        opt_.peak_detect_factor * dsp::noise_floor_mag(*mag, *scratch);
    popt.min_separation = 0.5 * static_cast<double>(opt_.oversample);
    popt.max_peaks = max_peaks;
    dsp::find_peaks_mag(*spec, *mag, popt, *pk);
    for (const dsp::Peak& p : *pk) {
      PeakObservation ob;
      ob.window = j;
      ob.bin = p.bin / static_cast<double>(opt_.oversample);
      ob.magnitude = p.magnitude;
      ob.phase = std::arg(p.value);
      out.push_back(ob);
    }
  }
  return out;
}

std::vector<int> UserTracker::cluster_users(
    const std::vector<PeakObservation>& obs, std::size_t k, Rng& rng) const {
  if (obs.empty()) return {};
  CHOIR_OBS_TIMED_SCOPE("core.cluster.us");
  CHOIR_OBS_COUNT("core.cluster.observations",
                  static_cast<std::uint64_t>(obs.size()));
  double max_mag = 0.0;
  for (const auto& o : obs) max_mag = std::max(max_mag, o.magnitude);
  if (max_mag <= 0.0) max_mag = 1.0;

  std::vector<std::vector<double>> points;
  points.reserve(obs.size());
  for (const auto& o : obs) {
    points.push_back({frac_part(o.bin), o.magnitude / max_mag});
  }
  cluster::FeatureSpec spec;
  spec.circular = {true, false};
  spec.weight = {1.0, opt_.magnitude_feature_weight};

  std::vector<cluster::CannotLink> links;
  for (std::size_t i = 0; i < obs.size(); ++i) {
    for (std::size_t j = i + 1; j < obs.size(); ++j) {
      if (obs[i].window == obs[j].window) links.push_back({i, j});
    }
  }

  cluster::KMeansOptions kopt;
  kopt.k = k;
  kopt.restarts = opt_.kmeans_restarts;
  const cluster::KMeansResult r =
      cluster::constrained_kmeans(points, links, spec, kopt, rng);
  return r.assignment;
}

std::vector<std::vector<std::uint32_t>> UserTracker::symbol_streams(
    const std::vector<PeakObservation>& obs, const std::vector<int>& assignment,
    std::size_t k, std::size_t n_windows) const {
  if (obs.size() != assignment.size())
    throw std::invalid_argument("symbol_streams: size mismatch");
  const double dn = static_cast<double>(phy_.chips());
  constexpr std::uint32_t kMissing = 0xFFFFFFFFu;

  // Per-cluster circular-mean fractional offset.
  std::vector<double> sx(k, 0.0), sy(k, 0.0);
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    if (c >= k) continue;
    const double th = kTwoPi * frac_part(obs[i].bin);
    sx[c] += std::cos(th);
    sy[c] += std::sin(th);
  }
  std::vector<double> lambda(k, 0.0);
  for (std::size_t c = 0; c < k; ++c) {
    double th = std::atan2(sy[c], sx[c]);
    if (th < 0) th += kTwoPi;
    lambda[c] = th / kTwoPi;
  }

  std::vector<std::vector<std::uint32_t>> streams(
      k, std::vector<std::uint32_t>(n_windows, kMissing));
  // Strongest observation wins when a cluster has several in one window.
  std::vector<std::vector<double>> best_mag(k,
                                            std::vector<double>(n_windows, -1.0));
  for (std::size_t i = 0; i < obs.size(); ++i) {
    const auto c = static_cast<std::size_t>(assignment[i]);
    if (c >= k || obs[i].window >= n_windows) continue;
    if (obs[i].magnitude <= best_mag[c][obs[i].window]) continue;
    best_mag[c][obs[i].window] = obs[i].magnitude;
    double sym = std::round(obs[i].bin - lambda[c]);
    sym = std::fmod(std::fmod(sym, dn) + dn, dn);
    streams[c][obs[i].window] = static_cast<std::uint32_t>(sym);
  }
  return streams;
}

}  // namespace choir::core
