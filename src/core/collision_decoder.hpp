// Choir's multi-user collision decoder (paper Secs. 4-6).
//
// Given a capture containing K coarsely time-synchronized colliding LoRa
// frames (same spreading factor) and the sample index of the receiver's
// window grid anchor, the decoder:
//   1. estimates each user's aggregate offset and channel from the collided
//      preamble (OffsetEstimator: greedy-joint residual-minimizing
//      estimation that subsumes the phased SIC of Sec. 5.2),
//   2. splits each aggregate offset into CFO and timing via the SFD
//      down-chirps and validates the pairing on early data windows,
//   3. demodulates every data window with per-user fold-aware matched
//      templates and in-window successive cancellation; the *fractional*
//      offsets keep peaks attributable to users (the key insight of
//      Sec. 4: data shifts peaks by integers, hardware offsets by
//      fractions),
//   4. de-duplicates values split across adjacent windows by sub-symbol
//      timing offsets (inter-symbol interference, Sec. 6.1, Fig 5),
//   5. runs packet-level SIC: CRC-clean users are reconstructed over their
//      whole frame, subtracted, and the remaining users re-estimated on the
//      cleaned capture,
//   6. decodes each user's symbol stream through the LoRa codec and checks
//      its CRC.
#pragma once

#include <cstdint>
#include <vector>

#include "coding/codec.hpp"
#include "core/offset_estimator.hpp"
#include "lora/frame.hpp"
#include "lora/params.hpp"
#include "obs/trace.hpp"
#include "util/types.hpp"

namespace choir::core {

struct DecodedUser {
  UserEstimate est;
  std::vector<std::uint32_t> symbols;   ///< demodulated data symbols
  std::vector<std::uint8_t> payload;    ///< parsed payload (if frame_ok)
  bool frame_ok = false;                ///< frame structure parsed
  bool crc_ok = false;                  ///< payload CRC passed
  coding::DecodeStats fec;
};

struct CollisionDecoderOptions {
  EstimatorOptions est{};
  /// Largest timing offset (samples) considered when splitting each user's
  /// aggregate offset into CFO and timing via the SFD.
  double max_timing_samples = 8.0;
  /// Safety cap on decoded data symbols per collision.
  std::size_t max_data_symbols = 600;
  /// Enable the Fig-5 de-duplication of ISI-split symbol values (only
  /// meaningful when timing offsets exceed isi_dedup_min_tau samples —
  /// below that the previous symbol's ghost is negligible).
  bool isi_dedup = true;
  double isi_dedup_min_tau = 8.0;
  /// Runner-up score must reach this fraction of the winner's for the ISI
  /// de-duplication rule to prefer it.
  double isi_second_ratio = 0.4;
  /// Re-decode each user with the other users' templates removed (helps
  /// when fractional offsets nearly coincide).
  bool refine_pass = true;
  /// Refine each user's timing offset on the whole packet after the first
  /// demodulation pass, then re-demodulate (the SFD alone gives only two
  /// windows of timing evidence).
  bool tau_polish = true;
  /// Packet-level SIC rounds (1 = single decode, no cancellation loop).
  int packet_sic_rounds = 4;
};

/// Per-attempt diagnostics filled by decode(), consumed by the
/// observability decode-event log (src/obs/event_log.hpp).
struct DecodeDiag {
  /// User hypotheses produced by the first estimation pass (peak count
  /// after SNR gating) — the stage where undetected users are lost.
  std::size_t peak_count = 0;
  /// Packet-level SIC rounds actually executed (<= packet_sic_rounds).
  int sic_rounds = 0;
};

class CollisionDecoder {
 public:
  explicit CollisionDecoder(const lora::PhyParams& phy,
                            const CollisionDecoderOptions& opt = {});

  const lora::PhyParams& phy() const { return phy_; }

  /// Decodes all discernible users. `start` anchors the receiver's symbol
  /// window grid at the (beacon-synchronized) collision start; individual
  /// users may lead/lag it by their sub-symbol timing offsets. `diag`,
  /// when non-null, receives per-attempt stage diagnostics. `trace`, when
  /// non-null, collects per-stage spans (estimation, each SIC round) for
  /// the frame-trace subsystem (src/obs/trace.hpp).
  std::vector<DecodedUser> decode(const cvec& rx, std::size_t start,
                                  DecodeDiag* diag = nullptr,
                                  obs::TraceCollector* trace = nullptr) const;

  /// Like decode(), but also subtracts every decoded user's reconstructed
  /// signal from `rx` in the time domain — used to strip in-range users
  /// before hunting for below-noise sensor teams (Sec. 7.2).
  std::vector<DecodedUser> decode_and_subtract(cvec& rx,
                                               std::size_t start) const;

 private:
  std::vector<cvec> dechirped_windows(const cvec& rx, std::size_t start,
                                      std::size_t count, bool up) const;

  /// Splits each user's aggregate offset into CFO and timing using the SFD
  /// down-chirp windows (fills timing_samples / cfo_bins in place).
  void estimate_timing(const cvec& rx, std::size_t start,
                       std::vector<UserEstimate>& users) const;

  /// Per-window symbol extraction: fold-aware matched filtering per user
  /// with in-window successive cancellation (strongest user first).
  /// `peak_positions` are the window's FFT peak positions (chirp bins),
  /// used to shortlist candidate symbols; pass empty to scan exhaustively.
  std::vector<std::uint32_t> extract_window_symbols(
      const cvec& dechirped, const std::vector<UserEstimate>& users,
      const std::vector<double>& peak_positions,
      std::vector<std::uint32_t>& prev_symbols) const;

  /// FFT peak positions (chirp bins) of a dechirped window.
  std::vector<double> window_peak_positions(const cvec& dechirped,
                                            std::size_t max_peaks) const;

  /// Single estimation+demodulation pass (no packet-level SIC).
  std::vector<DecodedUser> decode_once(const cvec& rx, std::size_t start,
                                       obs::TraceCollector* trace) const;

  /// Subtracts the given users' full reconstructed frames from `rx`.
  void subtract_users(cvec& rx, std::size_t start,
                      const std::vector<DecodedUser>& users) const;

  void subtract_window(cvec& rx, std::size_t wstart,
                       const std::vector<double>& positions, bool up) const;

  lora::PhyParams phy_;
  CollisionDecoderOptions opt_;
  OffsetEstimator estimator_;
  cvec downchirp_;
  cvec upchirp_;
};

}  // namespace choir::core
