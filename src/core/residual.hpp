// Residual model for collided, dechirped LoRa symbols (paper Sec. 5.1).
//
// After dechirping, a collision of K transmitters in one symbol window is
//
//   y[n] = sum_i  h_i * exp(j*2*pi*offset_i*n/N),     n = 0..N-1   (Eqn 1)
//
// where offset_i is user i's aggregate (data + CFO + timing) position in
// fractional FFT bins. Given candidate offsets, the channels h_i follow in
// closed form by least squares (Eqn 2); the power of the reconstruction
// residual (Eqn 3) scores the candidates, and is locally convex around the
// truth (Fig 4), enabling the descent-based refinement (Eqn 4).
#pragma once

#include <vector>

#include "util/linalg.hpp"
#include "util/types.hpp"

namespace choir::core {

/// E matrix of Eqn 2: column i is the unit tone at offset_i (fractional
/// bins) over n = 0..n_samples-1.
CMatrix tone_matrix(const std::vector<double>& offsets_bins,
                    std::size_t n_samples);

/// Least-squares channel fit (Eqn 2) of a dechirped window at the given
/// candidate offsets.
cvec fit_channels(const cvec& dechirped,
                  const std::vector<double>& offsets_bins);

/// Residual power ||y - E*h||^2 (Eqn 3) with h the LS fit.
double residual_power(const cvec& dechirped,
                      const std::vector<double>& offsets_bins);

/// Sum of per-window residual powers with channels fit independently per
/// window (the offsets are shared — they are hardware properties; the
/// per-window phases are not, because the tone phase advances between
/// symbol windows).
double residual_power_multi(const std::vector<cvec>& windows,
                            const std::vector<double>& offsets_bins);

/// Per-window least-squares channel fits at shared offsets. Builds the
/// Gram and its Cholesky factorization ONCE and reuses them for every
/// window (fit_channels per window would refactorize W times).
std::vector<cvec> fit_channels_multi(const std::vector<cvec>& windows,
                                     const std::vector<double>& offsets_bins);

/// Subtracts the reconstructed tones (offsets + channels) from a dechirped
/// window in place.
void subtract_tones(cvec& dechirped, const std::vector<double>& offsets_bins,
                    const cvec& channels);

/// Reconstructs sum_i h_i * tone(offset_i) over n_samples samples.
cvec reconstruct_tones(const std::vector<double>& offsets_bins,
                       const cvec& channels, std::size_t n_samples);

/// Incremental residual evaluator for the coordinate-descent refinement.
///
/// A full residual evaluation refits every user on every window; during a
/// line search only ONE offset moves, so only that user's projections
/// (O(N) per window, computed via a shared phasor table) and one Gram
/// row/column change (O(K) trig on a copy of the cached Gram — never a
/// full O(K^2) rebuild per candidate). All work buffers are owned by the
/// evaluator, so after construction try/set/current allocate nothing.
class ToneResidualEvaluator {
 public:
  ToneResidualEvaluator(const std::vector<cvec>& windows,
                        std::vector<double> offsets);

  std::size_t dimensions() const { return offsets_.size(); }
  const std::vector<double>& offsets() const { return offsets_; }

  /// Residual at the current offsets.
  double current();

  /// Residual with coordinate i replaced by `value` (no state change).
  double try_coordinate(std::size_t i, double value);

  /// Commits a coordinate change.
  void set_coordinate(std::size_t i, double value);

  /// Appends a new tone at `value`.
  void add_tone(double value);

 private:
  /// Residual using `g` as the Gram; column `changed` of b comes from
  /// changed_b_ instead of the cache (SIZE_MAX = no substitution).
  double evaluate(const CMatrix& g, std::size_t changed);
  /// Projects every window onto the tone at `offset` via a phasor table
  /// (built once, then W plain dot products) into `out` (resized to W).
  void project_into(double offset, std::vector<cplx>& out);
  void rebuild_gram();
  /// Recomputes row/column i of `g` for offsets_ with offset i at `value`.
  void update_gram_cross(CMatrix& g, std::size_t i, double value) const;

  const std::vector<cvec>& windows_;
  std::vector<double> offsets_;
  std::vector<double> window_energy_;
  /// b_[u][w] = projection of window w on tone u.
  std::vector<std::vector<cplx>> b_;
  CMatrix gram_;       ///< cached Gram of the current offsets (with ridge)
  CMatrix gram_work_;  ///< scratch copy for try_coordinate
  Cholesky chol_;      ///< factorization scratch (storage reused)
  std::vector<cplx> changed_b_;  ///< projections of the trial tone
  cvec phasor_;                  ///< tone phasor table, length N
  cvec b_work_;                  ///< per-window rhs, length K
  cvec h_work_;                  ///< per-window solution, length K
};

/// Cyclic coordinate descent with golden-section line searches over the
/// evaluator's offsets; returns the final residual.
double descend_offsets(ToneResidualEvaluator& eval, double radius, int cycles,
                       double tol);

}  // namespace choir::core
