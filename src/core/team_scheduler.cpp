#include "core/team_scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "util/db.hpp"

namespace choir::core {

double aggregate_snr_db(const std::vector<double>& member_snrs_db) {
  double lin = 0.0;
  for (double s : member_snrs_db) lin += db_to_linear(s);
  return lin > 0.0 ? linear_to_db(lin) : -300.0;
}

TeamPlan plan_teams(const std::vector<SensorInfo>& sensors,
                    const TeamPlanOptions& opt) {
  TeamPlan plan;
  std::vector<const SensorInfo*> weak;
  for (const auto& s : sensors) {
    if (s.snr_db >= opt.individual_floor_db) {
      plan.individual.push_back(s.id);
    } else {
      weak.push_back(&s);
    }
  }
  // Strongest weak sensors seed teams: they need the fewest partners.
  std::sort(weak.begin(), weak.end(),
            [](const SensorInfo* a, const SensorInfo* b) {
              return a->snr_db > b->snr_db;
            });

  std::vector<bool> used(weak.size(), false);
  for (std::size_t i = 0; i < weak.size(); ++i) {
    if (used[i]) continue;
    std::vector<std::size_t> team_idx{i};
    std::vector<double> snrs{weak[i]->snr_db};
    used[i] = true;
    // Grow with the nearest unused below-floor sensors.
    while (aggregate_snr_db(snrs) < opt.team_target_db &&
           team_idx.size() < opt.max_team_size) {
      double best_d = opt.proximity_m;
      std::size_t best_j = weak.size();
      for (std::size_t j = 0; j < weak.size(); ++j) {
        if (used[j]) continue;
        // Distance to the seed keeps teams compact (correlated readings).
        const double dx = weak[j]->x_m - weak[i]->x_m;
        const double dy = weak[j]->y_m - weak[i]->y_m;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d <= best_d) {
          best_d = d;
          best_j = j;
        }
      }
      if (best_j == weak.size()) break;  // nobody close enough
      used[best_j] = true;
      team_idx.push_back(best_j);
      snrs.push_back(weak[best_j]->snr_db);
    }
    if (aggregate_snr_db(snrs) >= opt.team_target_db) {
      std::vector<std::size_t> ids;
      ids.reserve(team_idx.size());
      for (std::size_t t : team_idx) ids.push_back(weak[t]->id);
      plan.teams.push_back(std::move(ids));
    } else {
      for (std::size_t t : team_idx) plan.unreachable.push_back(weak[t]->id);
    }
  }
  return plan;
}

}  // namespace choir::core
